package core_test

import (
	"bytes"
	"sync"
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/internal/core"
	"hamoffload/internal/telemetry"
)

// Wire-bytes guards for the telemetry integration. The promise under test:
// an attached collector with flows disarmed changes NOTHING on the wire
// (host-side bookkeeping only), and arming flows wraps each message in a
// 12-byte flow frame around the otherwise-identical inner bytes — batch
// frames stay bare, with each entry flow-framed individually.

// captureBackend records every host->target wire message before forwarding.
type captureBackend struct {
	core.Backend
	calls *[][]byte
}

func (c *captureBackend) Call(n core.NodeID, msg []byte) (core.Handle, error) {
	*c.calls = append(*c.calls, append([]byte(nil), msg...))
	return c.Backend.Call(n, msg)
}

// runTelemetryWire runs a fixed workload — two sync offloads plus one
// three-entry batch frame — over loopback with the given collector (nil =
// telemetry off) and returns the captured wire messages in send order.
func runTelemetryWire(t *testing.T, col *telemetry.Collector) [][]byte {
	t.Helper()
	hb, tb, err := locb.NewPair(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "loopback-target-arch")
	target.SetTelemetry(col, nil)
	var calls [][]byte
	host := core.NewRuntime(&captureBackend{Backend: hb, calls: &calls}, "loopback-host-arch")
	host.SetTelemetry(col, nil)
	host.SetBatching(core.BatchPolicy{MaxMessages: 3})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("target Serve: %v", err)
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := core.Sync(host, 1, fnEcho.Bind("wire")); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	b := core.NewBatcher(host)
	var futs []*core.Future[string]
	for i := 0; i < 3; i++ {
		futs = append(futs, core.BatchAdd(b, 1, fnEcho.Bind("batched")))
	}
	b.FlushAll()
	if _, err := core.GetAll(futs); err != nil {
		t.Fatalf("GetAll: %v", err)
	}
	if err := host.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	wg.Wait()
	return calls
}

// TestTelemetryDisarmedWireIdentical pins the zero-cost promise on the
// wire: no collector and a collector without flows must produce
// byte-identical message streams.
func TestTelemetryDisarmedWireIdentical(t *testing.T) {
	base := runTelemetryWire(t, nil)
	disarmed := runTelemetryWire(t, telemetry.New(telemetry.Config{}))
	if len(base) != len(disarmed) {
		t.Fatalf("message counts differ: %d without telemetry, %d with disarmed collector",
			len(base), len(disarmed))
	}
	for i := range base {
		if !bytes.Equal(base[i], disarmed[i]) {
			t.Fatalf("message %d differs with a disarmed collector attached", i)
		}
	}
}

// TestTelemetryFlowsWrapWire pins the armed-flows framing: each non-batch
// message gains exactly a flow header around the same inner bytes, batch
// frames stay bare with each entry flow-framed, and trace IDs are unique.
func TestTelemetryFlowsWrapWire(t *testing.T) {
	base := runTelemetryWire(t, nil)
	flows := runTelemetryWire(t, telemetry.New(telemetry.Config{Flows: true}))
	if len(base) != len(flows) {
		t.Fatalf("message counts differ: %d bare, %d with flows", len(base), len(flows))
	}
	seen := map[uint64]bool{}
	noteID := func(i int, id uint64) {
		if id == 0 {
			t.Fatalf("message %d: zero trace ID", i)
		}
		if seen[id] {
			t.Fatalf("message %d: trace ID 0x%x reused", i, id)
		}
		seen[id] = true
	}
	for i := range base {
		if entries, isBatch, err := core.OpenBatchFrame(base[i]); isBatch {
			if err != nil {
				t.Fatalf("message %d: bare batch frame broken: %v", i, err)
			}
			// The armed frame must still be a bare batch frame...
			got, stillBatch, err := core.OpenBatchFrame(flows[i])
			if !stillBatch || err != nil {
				t.Fatalf("message %d: armed batch frame = batch %v, %v", i, stillBatch, err)
			}
			if len(got) != len(entries) {
				t.Fatalf("message %d: entry count %d, want %d", i, len(got), len(entries))
			}
			// ...with each entry flow-framed around the bare entry.
			for j := range entries {
				id, inner, ok := core.OpenFlowFrame(got[j])
				if !ok {
					t.Fatalf("message %d entry %d: not flow-framed", i, j)
				}
				noteID(i, id)
				if !bytes.Equal(inner, entries[j]) {
					t.Fatalf("message %d entry %d: inner bytes differ from bare run", i, j)
				}
			}
			continue
		}
		id, inner, ok := core.OpenFlowFrame(flows[i])
		if !ok {
			t.Fatalf("message %d: not flow-framed with flows armed", i)
		}
		noteID(i, id)
		if len(flows[i]) != len(base[i])+core.FlowHeaderLen {
			t.Fatalf("message %d: length %d, want bare %d + header %d",
				i, len(flows[i]), len(base[i]), core.FlowHeaderLen)
		}
		if !bytes.Equal(inner, base[i]) {
			t.Fatalf("message %d: inner bytes differ from bare run", i)
		}
	}
}
