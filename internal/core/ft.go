package core

import (
	"errors"
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// FaultTolerance configures the runtime's retry policy for transient
// offload failures (injected DMA errors, corrupt payloads, dropped
// frames). The zero value disables fault tolerance — no envelope bytes on
// the wire, no retries — which keeps un-faulted traffic bit-identical to
// the plain protocol.
//
// With MaxRetries > 0 every offload request is framed in a checksummed,
// sequence-numbered envelope (see envelope.go) and transient failures are
// retried up to MaxRetries times with bounded exponential backoff on the
// backend's clock: attempt k sleeps BackoffBase<<(k-1), capped at
// BackoffMax. The target's dedup window preserves at-most-once handler
// execution across retransmissions.
type FaultTolerance struct {
	MaxRetries  int
	BackoffBase simtime.Duration
	BackoffMax  simtime.Duration
	// Seed keys the splitmix64 stream (faults.Mix — the chaos plan's stream,
	// never a fresh randomness source) that jitters each backoff by up to
	// half its nominal length, decorrelating retry storms across initiators.
	// 0 disables jitter: backoffs are exactly the exponential schedule,
	// bit-identical to the un-seeded runtime.
	Seed uint64
}

func (ft FaultTolerance) enabled() bool { return ft.MaxRetries > 0 }

// backoffSleeper is implemented by backends that can serve a retry delay
// (the simulated backends sleep the initiating proc). Wall-clock backends
// retry immediately.
type backoffSleeper interface {
	Backoff(d simtime.Duration)
}

// Recoverer is implemented by backends that can re-establish the
// connection to a failed node (destroy the dead VE process, boot a fresh
// one, rerun protocol setup).
type Recoverer interface {
	RecoverNode(n NodeID) error
}

// SetFaultTolerance installs the retry policy on the initiating runtime.
// Call it before issuing offloads.
func (rt *Runtime) SetFaultTolerance(ft FaultTolerance) { rt.ft = ft }

// FaultTolerancePolicy returns the installed retry policy.
func (rt *Runtime) FaultTolerancePolicy() FaultTolerance { return rt.ft }

// Retries returns how many transient-failure retries this runtime has
// performed.
func (rt *Runtime) Retries() int64 { return rt.retries }

// Timeouts returns how many offloads ended in ErrOffloadTimeout.
func (rt *Runtime) Timeouts() int64 { return rt.timeouts }

// RecoverNode asks the backend to re-establish a failed node, the
// machine-level recovery hook: after it succeeds, new offloads to the node
// are accepted again. Futures that failed with ErrNodeFailed stay failed.
func (rt *Runtime) RecoverNode(n NodeID) error {
	if r, ok := rt.backend.(Recoverer); ok {
		return r.RecoverNode(n)
	}
	return fmt.Errorf("core: backend %T cannot recover nodes", rt.backend)
}

// pending is the retransmission state of one fault-tolerant offload: the
// sealed wire message and where it goes, so a transient failure can be
// re-posted verbatim (same sequence number — the target dedups).
type pending struct {
	node    NodeID
	msg     []byte
	seq     uint64
	attempt int
	fid     uint64       // causal trace ID riding on msg, 0 without armed flows
	sentAt  simtime.Time // issue time on the simulated clock; hedge delays measure from here
	pinned  bool         // node-addressed runtime control message: never hedge
}

// pinnedMessage reports whether name is a runtime control message
// (terminate, allocate, free, ping). These address a specific node's state,
// so speculatively re-executing one on a *different* node is never correct:
// a hedged allocate returns an address on the wrong card, and a hedged
// terminate shuts down a healthy node that still has traffic — then waits
// forever for the real target's terminate to answer. Pinned offloads
// resolve through the plain retry path regardless of the hedging policy.
func pinnedMessage(name string) bool {
	return len(name) >= len(msgPrefix) && name[:len(msgPrefix)] == msgPrefix
}

// nextSeq allocates a fresh envelope sequence number.
func (rt *Runtime) nextSeq() uint64 {
	rt.seq++
	return rt.seq
}

// seal wraps an encoded request for fault-tolerant transmission, when the
// policy is on. A nil pending means FT is off and msg travels bare.
func (rt *Runtime) seal(node NodeID, msg []byte) ([]byte, *pending) {
	if !rt.ft.enabled() {
		return msg, nil
	}
	pd := &pending{node: node, seq: rt.nextSeq(), sentAt: rt.telNow()} //lint:allow hotalloc retransmission state must outlive the offload
	pd.msg = sealMessage(envRequest, pd.seq, msg)
	return pd.msg, pd
}

// canRetry decides whether pd may be retransmitted for err: the failure
// must be transient, attempts must remain, and — last, because it spends a
// token — the target's retry budget must allow more traffic.
func (rt *Runtime) canRetry(pd *pending, err error) bool {
	return pd != nil && IsTransient(err) && pd.attempt < rt.ft.MaxRetries &&
		rt.spendToken(pd.node)
}

// noteTimeout counts a timed-out offload on its way to the caller.
func (rt *Runtime) noteTimeout(err error) {
	if errors.Is(err, ErrOffloadTimeout) {
		rt.timeouts++
		rt.tr.Instant(trace.PhaseTimeout, "offload timeout", rt.offloads)
		rt.tr.Count("offload.timeouts", 1)
	}
}

// resubmit backs off and re-posts pd, consuming one retry. It keeps
// consuming budget while the re-post itself fails transiently. Only faulted
// offloads come through here, so its label formatting is off the hot path.
//
//hot:cold
func (rt *Runtime) resubmit(pd *pending) (Handle, error) {
	for {
		pd.attempt++
		rt.retries++
		rt.tr.Instant(trace.PhaseRetry, fmt.Sprintf("retry %d seq %d", pd.attempt, pd.seq), rt.offloads)
		rt.tr.Count("offload.retries", 1)
		if rt.tel != nil {
			now := rt.telNow()
			rt.tel.Add(int(pd.node), telemetry.SeriesRetries, now, 1)
			// For a retried batch frame pd.fid is the first entry's ID; the
			// whole frame retransmits as a unit, so one event stands in.
			rt.tel.Event(pd.fid, now, int(rt.ThisNode()), telemetry.FlowRetry,
				fmt.Sprintf("attempt %d", pd.attempt))
		}
		d := rt.ft.BackoffBase
		if d > 0 {
			for i := 1; i < pd.attempt; i++ {
				d *= 2
				if rt.ft.BackoffMax > 0 && d >= rt.ft.BackoffMax {
					d = rt.ft.BackoffMax
					break
				}
			}
			if rt.ft.Seed != 0 {
				d += simtime.Duration(faults.Mix(rt.ft.Seed, pd.seq, uint64(pd.attempt)) % uint64(d/2+1))
			}
			if b, ok := rt.backend.(backoffSleeper); ok {
				b.Backoff(d)
			}
		}
		rt.noteSent(pd.node, len(pd.msg))
		h, err := rt.backend.Call(pd.node, pd.msg)
		if err == nil {
			return h, nil
		}
		if !rt.canRetry(pd, err) {
			rt.noteTimeout(err)
			return nil, err
		}
	}
}

// openResponse validates and unwraps a response under pd's policy. With FT
// off it is the identity. Any framing violation — missing envelope, bad
// checksum, foreign sequence number, or a target-issued NACK — classifies
// as ErrPayloadCorrupt, i.e. transient.
func (rt *Runtime) openResponse(pd *pending, resp []byte) ([]byte, error) {
	if pd == nil {
		return resp, nil
	}
	kind, seq, payload, enveloped, err := openMessage(resp)
	if err != nil {
		return nil, err
	}
	if !enveloped {
		return nil, fmt.Errorf("%w: response not enveloped", ErrPayloadCorrupt)
	}
	if kind == envNack {
		return nil, fmt.Errorf("%w: target rejected request checksum (seq %d)", ErrPayloadCorrupt, seq)
	}
	if kind != envResponse || seq != pd.seq {
		return nil, fmt.Errorf("%w: response envelope kind %d seq %d (want seq %d)",
			ErrPayloadCorrupt, kind, seq, pd.seq)
	}
	return payload, nil
}

// resolve blocks until the offload behind h completes, applying the retry
// policy: transient failures (from the backend or from response
// validation) are re-posted until the budget runs out. A hedging-armed
// runtime resolves enveloped offloads through the racing path instead.
func (rt *Runtime) resolve(h Handle, pd *pending) ([]byte, error) {
	if rt.hedge.enabled() && pd != nil && !pd.pinned {
		return rt.resolveHedged(h, pd)
	}
	for {
		resp, err := rt.backend.Wait(h)
		if err == nil {
			resp, err = rt.openResponse(pd, resp)
			if err == nil {
				return resp, nil
			}
		}
		if !rt.canRetry(pd, err) {
			rt.noteTimeout(err)
			return nil, err
		}
		h, err = rt.resubmit(pd)
		if err != nil {
			return nil, err
		}
	}
}

// pollResolved is the non-blocking variant of resolve, for Future.Test: it
// returns the (possibly re-posted) handle and done=false while the offload
// is still in flight.
func (rt *Runtime) pollResolved(h Handle, pd *pending) (resp []byte, nh Handle, done bool, err error) {
	resp, done, err = rt.backend.Poll(h)
	if err == nil && !done {
		return nil, h, false, nil
	}
	if err == nil {
		resp, err = rt.openResponse(pd, resp)
		if err == nil {
			return resp, h, true, nil
		}
	}
	if rt.canRetry(pd, err) {
		nh, rerr := rt.resubmit(pd)
		if rerr == nil {
			return nil, nh, false, nil
		}
		err = rerr
	}
	rt.noteTimeout(err)
	return nil, h, true, err
}
