package core

import (
	"hamoffload/internal/mem"
)

// Heap is a LocalMemory backed by the shared sparse-memory machinery — used
// by the wall-clock backends (loopback, TCP) where a node's memory is just
// process memory rather than simulated device memory.
type Heap struct {
	m *mem.Memory
	a *mem.Allocator
}

// NewHeap creates a heap of the given capacity. The base address is
// arbitrary but non-zero so that address 0 stays a null pointer.
func NewHeap(name string, capacity int64) (*Heap, error) {
	a, err := mem.NewAllocator(name, 0x1000, capacity, 64)
	if err != nil {
		return nil, err
	}
	return &Heap{m: mem.NewMemory(name), a: a}, nil
}

// Alloc implements LocalMemory.
func (h *Heap) Alloc(n int64) (uint64, error) {
	addr, err := h.a.Alloc(n)
	if err != nil {
		return 0, err
	}
	size, _ := h.a.SizeOf(addr)
	if err := h.m.Map(addr, size); err != nil {
		_ = h.a.Free(addr)
		return 0, err
	}
	return uint64(addr), nil
}

// Free implements LocalMemory.
func (h *Heap) Free(addr uint64) error {
	if err := h.a.Free(mem.Addr(addr)); err != nil {
		return err
	}
	return h.m.Unmap(mem.Addr(addr))
}

// Read implements LocalMemory.
func (h *Heap) Read(addr uint64, p []byte) error {
	return h.m.ReadAt(p, mem.Addr(addr))
}

// Write implements LocalMemory.
func (h *Heap) Write(addr uint64, data []byte) error {
	return h.m.WriteAt(data, mem.Addr(addr))
}

// Live returns the number of live allocations, for leak checks in tests.
func (h *Heap) Live() int { return h.a.LiveCount() }
