package core

import (
	"fmt"

	"hamoffload/internal/ham"
)

// Built-in active messages of the runtime. Like in the C++ original, memory
// management on a target is itself implemented as offloaded messages: the
// host's Allocate is an active message whose handler runs the target-local
// allocator.
const (
	// msgPrefix namespaces the runtime's own messages; offloads carrying it
	// are node-pinned (see pinnedMessage).
	msgPrefix    = "ham.rt."
	msgAlloc     = "ham.rt.allocate"
	msgFree      = "ham.rt.free"
	msgTerminate = "ham.rt.terminate"
	msgPing      = "ham.rt.ping"
)

func init() {
	ham.RegisterHandler(msgAlloc, func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		rt := env.(*Runtime)
		size := dec.I64()
		if err := dec.Err(); err != nil {
			return err
		}
		addr, err := rt.backend.Memory().Alloc(size)
		if err != nil {
			return fmt.Errorf("core: target allocate(%d): %w", size, err)
		}
		enc.PutU64(addr)
		return nil
	})

	ham.RegisterHandler(msgFree, func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		rt := env.(*Runtime)
		addr := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		return rt.backend.Memory().Free(addr)
	})

	ham.RegisterHandler(msgTerminate, func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		env.(*Runtime).terminated = true
		return nil
	})

	ham.RegisterHandler(msgPing, func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		rt := env.(*Runtime)
		d := rt.GetNodeDescriptor(rt.ThisNode())
		enc.PutString(d.Name)
		enc.PutString(d.Arch)
		enc.PutString(d.Device)
		enc.PutU64(rt.bin.Fingerprint())
		return nil
	})
}

// Ping round-trips a descriptor request to node n — a liveness check that
// also exercises the whole message path.
func (rt *Runtime) Ping(n NodeID) (NodeDescriptor, error) {
	d, _, err := rt.ping(n)
	return d, err
}

func (rt *Runtime) ping(n NodeID) (NodeDescriptor, uint64, error) {
	dec, err := rt.callSync(n, msgPing, nil)
	if err != nil {
		return NodeDescriptor{}, 0, err
	}
	d := NodeDescriptor{Name: dec.String(), Arch: dec.String(), Device: dec.String()}
	fp := dec.U64()
	return d, fp, dec.Err()
}

// CheckCompatible verifies that node n's binary was instantiated from the
// same message-type program as this one, i.e. that handler keys translate
// identically on both sides. Incompatible binaries — one side registered
// functions the other did not — would otherwise dispatch the wrong handlers.
func (rt *Runtime) CheckCompatible(n NodeID) error {
	d, fp, err := rt.ping(n)
	if err != nil {
		return err
	}
	if fp != rt.bin.Fingerprint() {
		return fmt.Errorf("core: node %d (%s) runs an incompatible binary: "+
			"message tables differ (fingerprint %#x != %#x)", n, d.Name, fp, rt.bin.Fingerprint())
	}
	return nil
}
