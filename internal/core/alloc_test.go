package core

import (
	"testing"

	"hamoffload/internal/ham"
)

// Allocation guards for the zero-alloc hot paths that docs/LINTING.md's
// hotalloc analyzer protects statically: the analyzer proves no *new*
// allocation sites sneak onto the paths, these tests prove the existing
// machinery (scratch codecs, frame arenas, the batchCall pool) really
// reaches zero allocations per event at run time. The two must agree — a
// regression in either fails the build.
//
// The argument and result values stay below 256 on purpose: the generic
// codecs box them through `any`, and Go only guarantees allocation-free
// boxing for small integers.

var fnAllocInc = NewFunc1[int64]("test.allocinc",
	func(_ *Ctx, v int64) (int64, error) { return v + 1, nil })

// allocBackend is a synchronous in-process Backend stub: Call dispatches on
// the target runtime immediately and Wait/Poll hand the response back. It
// honours the Backend contract trivially — the message is fully consumed
// (dispatched) before Call returns — and adds no allocations of its own.
type allocBackend struct {
	target *Runtime
	resp   []byte
}

func (b *allocBackend) Self() NodeID  { return 0 }
func (b *allocBackend) NumNodes() int { return 2 }
func (b *allocBackend) Descriptor(NodeID) NodeDescriptor {
	return NodeDescriptor{Name: "alloc-stub"}
}

func (b *allocBackend) Call(target NodeID, msg []byte) (Handle, error) {
	b.resp = b.target.Dispatch(msg)
	return b, nil
}

func (b *allocBackend) Wait(Handle) ([]byte, error)       { return b.resp, nil }
func (b *allocBackend) Poll(Handle) ([]byte, bool, error) { return b.resp, true, nil }
func (b *allocBackend) Put(NodeID, []byte, uint64) error  { return nil }
func (b *allocBackend) Get(NodeID, uint64, []byte) error  { return nil }
func (b *allocBackend) Serve(Server) error                { return nil }
func (b *allocBackend) Memory() LocalMemory               { return nil }
func (b *allocBackend) ChargeVector(int64, int64, int)    {}
func (b *allocBackend) ChargeScalar(int64)                {}
func (b *allocBackend) Close() error                      { return nil }

// TestDispatchZeroAlloc pins the un-armed target fast path — Dispatch of a
// bare HAM message with tracing, telemetry, FT and batching all off — at
// exactly zero allocations per message. This is the path every simulated
// event crosses, so a single allocation here multiplies by the event count
// of a benchmark run.
func TestDispatchZeroAlloc(t *testing.T) {
	bk := &allocBackend{}
	rt := NewRuntime(bk, "alloc-arch-dispatch")
	bk.target = rt

	fn := fnAllocInc.Bind(41)
	msg, err := rt.bin.EncodeRequest(fn.name, fn.payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp []byte
	allocs := testing.AllocsPerRun(200, func() {
		resp = rt.Dispatch(msg)
	})
	v, err := func() (int64, error) {
		dec, err := ham.DecodeResponse(resp)
		if err != nil {
			return 0, err
		}
		return fn.decode(dec)
	}()
	if err != nil || v != 42 {
		t.Fatalf("dispatch result = %d, %v; want 42, nil", v, err)
	}
	if allocs != 0 {
		t.Errorf("un-armed Dispatch allocates %.1f times per message; the fast path is contractually zero-alloc (see docs/LINTING.md)", allocs)
	}
}

// TestBatchFlushZeroAlloc pins the batch flush-and-settle cycle — frame
// arena stamp, backend post, target-side batch dispatch, response split,
// future settlement, batchCall recycling — at zero allocations once warm.
// The queue is refilled by hand exactly as BatchAdd would fill it, because
// BatchAdd's one future per offload is an intentional, allowed allocation
// and would drown the signal this test watches.
func TestBatchFlushZeroAlloc(t *testing.T) {
	tbk := &allocBackend{}
	target := NewRuntime(tbk, "alloc-arch-batch-t")
	tbk.target = target
	hbk := &allocBackend{target: target}
	host := NewRuntime(hbk, "alloc-arch-batch-h")
	host.SetBatching(BatchPolicy{MaxMessages: 8})

	b := NewBatcher(host)
	q := b.queue(1)
	fn := fnAllocInc.Bind(41)
	wire, err := host.bin.EncodeRequest(fn.name, fn.payload)
	if err != nil {
		t.Fatal(err)
	}
	fu1 := &Future[int64]{rt: host, decode: fn.decode}
	fu2 := &Future[int64]{rt: host, decode: fn.decode}

	var gotV int64
	var gotErr error
	cycle := func() {
		// Rewind the two futures and queue them as BatchAdd would.
		fu1.done, fu1.val, fu1.err = false, 0, nil
		fu2.done, fu2.val, fu2.err = false, 0, nil
		fu1.btv = batchTicket{b: b, q: q}
		fu2.btv = batchTicket{b: b, q: q}
		fu1.bt, fu2.bt = &fu1.btv, &fu2.btv
		q.putEntry(wire)
		q.putEntry(wire)
		q.pds = append(q.pds, nil, nil)
		q.sinks = append(q.sinks, fu1, fu2)
		q.tks = append(q.tks, fu1.bt, fu2.bt)
		q.fids = append(q.fids, 0, 0)
		b.flushQueue(q)
		gotV, gotErr = fu1.Get()
		fu2.Get()
	}
	// One explicit warm cycle (besides AllocsPerRun's own) grows every
	// scratch buffer and fills the batchCall pool.
	cycle()
	if gotErr != nil || gotV != 42 {
		t.Fatalf("batched result = %d, %v; want 42, nil", gotV, gotErr)
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if gotErr != nil || gotV != 42 {
		t.Fatalf("batched result = %d, %v; want 42, nil", gotV, gotErr)
	}
	if allocs != 0 {
		t.Errorf("batch flush+settle allocates %.1f times per frame; the warm cycle is contractually zero-alloc (see docs/LINTING.md)", allocs)
	}
}
