package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzBatchFrame fuzzes the batch frame decoder (openBatch /
// openBatchInto) with arbitrary bytes. The decoder sits on the target's
// receive path, so whatever arrives on the wire — malformed, truncated,
// count-mismatched — it must classify without panicking or over-reading:
//
//   - not a frame: isBatch = false, nil error, nil entries (the bytes fall
//     through to the plain HAM / FT dispatch path);
//   - a broken frame: isBatch = true and ErrPayloadCorrupt;
//   - a well-formed frame: entries that alias the input and re-seal to the
//     byte-identical frame (the codec admits exactly one encoding, so a
//     clean parse proves the frame came from sealBatch).
//
// Run with `go test -fuzz FuzzBatchFrame ./internal/core` to explore; the
// committed corpus below seeds it from valid encoder output plus the
// classic corruption shapes.
func FuzzBatchFrame(f *testing.F) {
	// Valid encoder output, from empty-payload singletons up to mixed sizes.
	for _, msgs := range [][][]byte{
		{{}},
		{{1, 2, 3}},
		{{}, {0xff}, bytes.Repeat([]byte{7}, 300)},
		{make([]byte, 1), make([]byte, 2), make([]byte, 3), make([]byte, 4)},
	} {
		f.Add(sealBatch(msgs))
	}
	// Corrupted frames: truncation, trailing garbage, count mismatches.
	base := sealBatch([][]byte{{1, 2, 3}, {4, 5}})
	f.Add(base[:len(base)-1])
	f.Add(append(append([]byte(nil), base...), 0xEE))
	over := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(over[4:8], 1<<30)
	f.Add(over)
	// Non-frames: plain bytes, bare magic, zeroes.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(binary.LittleEndian.AppendUint32(nil, batMagic))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, msg []byte) {
		entries, isBatch, err := openBatch(msg)
		if !isBatch {
			// Plain message: it must pass through untouched, with no entries
			// and no error, regardless of content.
			if err != nil {
				t.Fatalf("non-frame returned error %v", err)
			}
			if entries != nil {
				t.Fatalf("non-frame returned %d entries", len(entries))
			}
			return
		}
		if err != nil {
			// Broken frame: the error contract is ErrPayloadCorrupt so the
			// target can answer with a failure response instead of crashing.
			if !errors.Is(err, ErrPayloadCorrupt) {
				t.Fatalf("broken frame error %v is not ErrPayloadCorrupt", err)
			}
			return
		}
		// Clean parse: every entry must lie inside msg (no over-read) and
		// the entries must re-encode to the byte-identical frame.
		total := batHeader
		for i, e := range entries {
			total += batPerMsg + len(e)
			if len(e) > len(msg) {
				t.Fatalf("entry %d longer than the whole frame", i)
			}
		}
		if total != len(msg) {
			t.Fatalf("entries span %d bytes, frame has %d", total, len(msg))
		}
		if !bytes.Equal(sealBatch(entries), msg) {
			t.Fatal("clean frame did not re-seal byte-identically")
		}
		// openBatchInto must append after existing scratch, not clobber it.
		scratch := [][]byte{{0xAA}}
		into, isBatch2, err2 := openBatchInto(scratch, msg)
		if !isBatch2 || err2 != nil {
			t.Fatalf("openBatchInto disagreed with openBatch: batch %v, %v", isBatch2, err2)
		}
		if len(into) != 1+len(entries) || len(into[0]) != 1 || into[0][0] != 0xAA {
			t.Fatal("openBatchInto clobbered the caller's scratch prefix")
		}
	})
}
