package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"hamoffload/internal/ham"
)

// Elem constrains buffer element types to fixed-size scalars, whose byte
// representation is identical on the VH and the VE.
type Elem interface {
	~int8 | ~int16 | ~int32 | ~int64 |
		~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// BufferPtr points to target memory of element type T; the node address is
// part of the pointer (Table II's buffer_ptr<T>). The zero value is a null
// pointer.
type BufferPtr[T Elem] struct {
	Node  NodeID
	Addr  uint64
	Count int64 // number of elements
}

// IsNil reports whether the pointer is null.
func (b BufferPtr[T]) IsNil() bool { return b.Addr == 0 }

// ByteSize returns the buffer size in bytes.
func (b BufferPtr[T]) ByteSize() int64 { return b.Count * sizeOf[T]() }

// Offset returns a pointer advanced by n elements; bounds-checked against
// the allocation's element count.
func (b BufferPtr[T]) Offset(n int64) (BufferPtr[T], error) {
	if n < 0 || n > b.Count {
		return BufferPtr[T]{}, fmt.Errorf("core: offset %d outside buffer of %d elements", n, b.Count)
	}
	return BufferPtr[T]{Node: b.Node, Addr: b.Addr + uint64(n*sizeOf[T]()), Count: b.Count - n}, nil
}

// EncodeHAM implements Marshaler, making buffer pointers offloadable as
// function arguments.
func (b *BufferPtr[T]) EncodeHAM(e *ham.Encoder) {
	e.PutI64(int64(b.Node))
	e.PutU64(b.Addr)
	e.PutI64(b.Count)
}

// DecodeHAM implements Marshaler.
func (b *BufferPtr[T]) DecodeHAM(d *ham.Decoder) {
	b.Node = NodeID(d.I64())
	b.Addr = d.U64()
	b.Count = d.I64()
}

// sizeOf returns the wire size of one element of T.
func sizeOf[T Elem]() int64 {
	var zero T
	return int64(binary.Size(zero))
}

// Allocate reserves count elements of type T on target memory (Table II's
// allocate). Like in the C++ runtime, allocation is itself an active message
// executed by the target.
func Allocate[T Elem](rt *Runtime, node NodeID, count int64) (BufferPtr[T], error) {
	if count <= 0 {
		return BufferPtr[T]{}, fmt.Errorf("core: allocate of %d elements", count)
	}
	dec, err := rt.callSync(node, msgAlloc, func(e *ham.Encoder) {
		e.PutI64(count * sizeOf[T]())
	})
	if err != nil {
		return BufferPtr[T]{}, err
	}
	addr := dec.U64()
	if err := dec.Err(); err != nil {
		return BufferPtr[T]{}, err
	}
	return BufferPtr[T]{Node: node, Addr: addr, Count: count}, nil
}

// Free releases target memory allocated with Allocate (Table II's free).
func Free[T Elem](rt *Runtime, b BufferPtr[T]) error {
	if b.IsNil() {
		return nil
	}
	_, err := rt.callSync(b.Node, msgFree, func(e *ham.Encoder) {
		e.PutU64(b.Addr)
	})
	return err
}

// elemsToBytes serialises a slice of elements little-endian.
func elemsToBytes[T Elem](src []T) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(src) * int(sizeOf[T]()))
	if err := binary.Write(&buf, binary.LittleEndian, src); err != nil {
		return nil, fmt.Errorf("core: encoding %T: %w", src, err)
	}
	return buf.Bytes(), nil
}

// bytesToElems deserialises little-endian bytes into dst.
func bytesToElems[T Elem](data []byte, dst []T) error {
	if err := binary.Read(bytes.NewReader(data), binary.LittleEndian, dst); err != nil {
		return fmt.Errorf("core: decoding %T: %w", dst, err)
	}
	return nil
}

// Put writes src into target memory at dst (Table II's put). It fails if
// src exceeds the buffer.
func Put[T Elem](rt *Runtime, src []T, dst BufferPtr[T]) error {
	if int64(len(src)) > dst.Count {
		return fmt.Errorf("core: put of %d elements into buffer of %d", len(src), dst.Count)
	}
	if len(src) == 0 {
		return nil
	}
	data, err := elemsToBytes(src)
	if err != nil {
		return err
	}
	return rt.backend.Put(dst.Node, data, dst.Addr)
}

// Get reads len(dst) elements from target memory at src (Table II's get).
func Get[T Elem](rt *Runtime, src BufferPtr[T], dst []T) error {
	if int64(len(dst)) > src.Count {
		return fmt.Errorf("core: get of %d elements from buffer of %d", len(dst), src.Count)
	}
	if len(dst) == 0 {
		return nil
	}
	raw := make([]byte, int64(len(dst))*sizeOf[T]())
	if err := rt.backend.Get(src.Node, src.Addr, raw); err != nil {
		return err
	}
	return bytesToElems(raw, dst)
}

// PutAsync is the asynchronous variant of Put (Table II's future<void>
// put). All current backends complete the transfer before returning —
// matching the eager completion of the original's TCP and SCIF backends —
// so the returned future is immediately ready; it exists for API
// compatibility and forward evolution.
func PutAsync[T Elem](rt *Runtime, src []T, dst BufferPtr[T]) *Future[Unit] {
	return completedFuture(Unit{}, Put(rt, src, dst))
}

// GetAsync is the asynchronous variant of Get (Table II's future<void> get);
// see PutAsync for the completion semantics.
func GetAsync[T Elem](rt *Runtime, src BufferPtr[T], dst []T) *Future[Unit] {
	return completedFuture(Unit{}, Get(rt, src, dst))
}

// Copy performs a direct copy between buffers on two offload targets,
// orchestrated by the calling node (Table II's copy): the data is staged
// through the orchestrator, as the VEO-era SX-Aurora platform offers no
// VE-to-VE path.
func Copy[T Elem](rt *Runtime, src, dst BufferPtr[T], count int64) error {
	if count > src.Count || count > dst.Count {
		return fmt.Errorf("core: copy of %d elements exceeds buffers (%d src, %d dst)",
			count, src.Count, dst.Count)
	}
	if count <= 0 {
		return nil
	}
	staging := make([]byte, count*sizeOf[T]())
	if err := rt.backend.Get(src.Node, src.Addr, staging); err != nil {
		return err
	}
	return rt.backend.Put(dst.Node, staging, dst.Addr)
}
