package core

import (
	"errors"
	"fmt"
	"testing"

	"hamoffload/internal/simtime"
)

// Unit tests for the gray-failure resilience layer (resilience.go): hedged
// requests racing a slow primary, the shared retry/hedge token budget, and
// the seeded jitter streams. The resBackend stub below models a fail-slow
// application: every node answers, but each with its own configurable
// service delay on a hand-advanced simulated clock — exactly the "sick but
// alive" shape hedging exists for.

var resExecs int64

var fnResEcho = NewFunc1[int64]("test.resecho",
	func(_ *Ctx, v int64) (int64, error) { resExecs++; return v, nil })

// resCall is one in-flight request of the resBackend: the response was
// computed at Call time (so target-side dedup sees calls in wire order),
// but it is not observable before readyAt on the simulated clock.
type resCall struct {
	resp    []byte
	readyAt simtime.Time
}

// resBackend is a fail-slow Backend stub: node 0 is the initiator, nodes
// 1..len(targets) dispatch on their own runtime after a per-node delay.
// Backoff advances the simulated clock, which is how the resolveHedged
// poll loop makes time pass.
type resBackend struct {
	targets []*Runtime // index 0 unused (self)
	delay   []simtime.Duration
	now     simtime.Time
	calls   []int // Call count per node
	failAll error // when set, every Call fails with it
}

func newResBackend(delays ...simtime.Duration) *resBackend {
	b := &resBackend{
		targets: make([]*Runtime, len(delays)+1),
		delay:   append([]simtime.Duration{0}, delays...),
		calls:   make([]int, len(delays)+1),
	}
	for i := 1; i < len(b.targets); i++ {
		b.targets[i] = NewRuntime(&allocBackend{}, fmt.Sprintf("res-arch-%d", i))
	}
	return b
}

func (b *resBackend) Self() NodeID  { return 0 }
func (b *resBackend) NumNodes() int { return len(b.targets) }
func (b *resBackend) Descriptor(NodeID) NodeDescriptor {
	return NodeDescriptor{Name: "res-stub"}
}

func (b *resBackend) Call(target NodeID, msg []byte) (Handle, error) {
	b.calls[target]++
	if b.failAll != nil {
		return nil, b.failAll
	}
	resp := b.targets[target].Dispatch(msg)
	return &resCall{
		resp:    append([]byte(nil), resp...),
		readyAt: b.now.Add(b.delay[target]),
	}, nil
}

func (b *resBackend) Poll(h Handle) ([]byte, bool, error) {
	rc := h.(*resCall)
	if b.now < rc.readyAt {
		return nil, false, nil
	}
	return rc.resp, true, nil
}

func (b *resBackend) Wait(h Handle) ([]byte, error) {
	rc := h.(*resCall)
	if b.now < rc.readyAt {
		b.now = rc.readyAt
	}
	return rc.resp, nil
}

func (b *resBackend) Backoff(d simtime.Duration)       { b.now = b.now.Add(d) }
func (b *resBackend) SimNow() simtime.Time             { return b.now }
func (b *resBackend) Put(NodeID, []byte, uint64) error { return nil }
func (b *resBackend) Get(NodeID, uint64, []byte) error { return nil }
func (b *resBackend) Serve(Server) error               { return nil }
func (b *resBackend) Memory() LocalMemory              { return nil }
func (b *resBackend) ChargeVector(int64, int64, int)   {}
func (b *resBackend) ChargeScalar(int64)               {}
func (b *resBackend) Close() error                     { return nil }

func resRuntime(b *resBackend) *Runtime {
	rt := NewRuntime(b, "res-arch-host")
	rt.SetFaultTolerance(FaultTolerance{MaxRetries: 3})
	return rt
}

func TestHedgeWinsAgainstSlowPrimary(t *testing.T) {
	b := newResBackend(500*simtime.Microsecond, 2*simtime.Microsecond)
	rt := resRuntime(b)
	rt.SetHedging(HedgePolicy{Delay: 10 * simtime.Microsecond, Targets: []NodeID{2}})

	v, err := Sync(rt, 1, fnResEcho.Bind(7))
	if err != nil || v != 7 {
		t.Fatalf("Sync = %d, %v; want 7, nil", v, err)
	}
	if b.calls[1] != 1 || b.calls[2] != 1 {
		t.Fatalf("calls = %v; want one primary, one hedge", b.calls)
	}
	if rt.Hedges() != 1 || rt.HedgeWins() != 1 {
		t.Fatalf("hedges = %d wins = %d; want 1, 1", rt.Hedges(), rt.HedgeWins())
	}
	// The race settled at hedge-delay + healthy service time, far below the
	// sick node's 500 µs — the whole point of hedging.
	if b.now.Sub(0) >= 500*simtime.Microsecond {
		t.Fatalf("settled at %v; hedge should have beaten the slow primary", b.now)
	}
	if b.now.Sub(0) < 12*simtime.Microsecond {
		t.Fatalf("settled at %v, before delay + hedge service time", b.now)
	}
}

func TestPrimaryWinsWhenHealthy(t *testing.T) {
	b := newResBackend(2*simtime.Microsecond, 2*simtime.Microsecond)
	rt := resRuntime(b)
	rt.SetHedging(HedgePolicy{Delay: 50 * simtime.Microsecond, Targets: []NodeID{2}})

	v, err := Sync(rt, 1, fnResEcho.Bind(9))
	if err != nil || v != 9 {
		t.Fatalf("Sync = %d, %v", v, err)
	}
	if rt.Hedges() != 0 || b.calls[2] != 0 {
		t.Fatalf("healthy primary still hedged: hedges=%d calls=%v", rt.Hedges(), b.calls)
	}
}

func TestSameNodeHedgeDedups(t *testing.T) {
	b := newResBackend(100 * simtime.Microsecond)
	rt := resRuntime(b)
	// No alternative targets: the hedge goes back to node 1, where the
	// dedup window answers it without re-executing the handler.
	rt.SetHedging(HedgePolicy{Delay: 5 * simtime.Microsecond})

	before := resExecs
	v, err := Sync(rt, 1, fnResEcho.Bind(3))
	if err != nil || v != 3 {
		t.Fatalf("Sync = %d, %v", v, err)
	}
	if b.calls[1] != 2 {
		t.Fatalf("calls to node 1 = %d; want primary + same-node hedge", b.calls[1])
	}
	if got := resExecs - before; got != 1 {
		t.Fatalf("handler executed %d times; dedup must keep it at exactly once", got)
	}
	if rt.Hedges() != 1 {
		t.Fatalf("hedges = %d, want 1", rt.Hedges())
	}
}

func TestHedgeSkipsUnhealthyTargets(t *testing.T) {
	b := newResBackend(100*simtime.Microsecond, simtime.Microsecond, simtime.Microsecond)
	rt := resRuntime(b)
	rt.SetHedging(HedgePolicy{
		Delay:   5 * simtime.Microsecond,
		Targets: []NodeID{2, 3},
		Healthy: func(n NodeID) bool { return n == 3 },
	})
	if _, err := Sync(rt, 1, fnResEcho.Bind(1)); err != nil {
		t.Fatal(err)
	}
	if b.calls[2] != 0 || b.calls[3] != 1 {
		t.Fatalf("calls = %v; hedge must skip the unhealthy candidate", b.calls)
	}
}

func TestRetryBudgetDeniesHedges(t *testing.T) {
	b := newResBackend(40*simtime.Microsecond, simtime.Microsecond)
	rt := resRuntime(b)
	rt.SetHedging(HedgePolicy{Delay: 5 * simtime.Microsecond, Targets: []NodeID{2}})
	rt.SetRetryBudget(RetryBudget{Tokens: 1}) // no refill: one hedge, ever

	for i := 0; i < 3; i++ {
		if v, err := Sync(rt, 1, fnResEcho.Bind(int64(i))); err != nil || v != int64(i) {
			t.Fatalf("offload %d = %d, %v", i, v, err)
		}
	}
	if rt.Hedges() != 1 {
		t.Fatalf("hedges = %d; the single token allows exactly one", rt.Hedges())
	}
	if rt.BudgetDenied() != 2 {
		t.Fatalf("budgetDenied = %d, want 2", rt.BudgetDenied())
	}
	if b.calls[2] != 1 {
		t.Fatalf("calls = %v; denied hedges must not reach the wire", b.calls)
	}
}

func TestRetryBudgetRefillsOnSimClock(t *testing.T) {
	b := newResBackend(simtime.Microsecond)
	rt := resRuntime(b)
	rt.SetRetryBudget(RetryBudget{Tokens: 2, Refill: 10 * simtime.Microsecond})

	if !rt.spendToken(1) || !rt.spendToken(1) {
		t.Fatal("fresh bucket must hold its full capacity")
	}
	if rt.spendToken(1) {
		t.Fatal("drained bucket must deny")
	}
	b.now = b.now.Add(10 * simtime.Microsecond)
	if !rt.spendToken(1) {
		t.Fatal("one refill interval must restore one token")
	}
	if rt.spendToken(1) {
		t.Fatal("only one token accrues per interval")
	}
	b.now = b.now.Add(100 * simtime.Microsecond)
	if !rt.spendToken(1) || !rt.spendToken(1) {
		t.Fatal("long idle must refill to capacity")
	}
	if rt.spendToken(1) {
		t.Fatal("refill must cap at Tokens")
	}
	if rt.BudgetDenied() != 3 {
		t.Fatalf("budgetDenied = %d, want 3", rt.BudgetDenied())
	}
}

// transientErr satisfies IsTransient for the budget-caps-retries test.
type transientErr struct{}

func (transientErr) Error() string   { return "transient stub failure" }
func (transientErr) Transient() bool { return true }

func TestRetryBudgetCapsRetries(t *testing.T) {
	b := newResBackend(simtime.Microsecond)
	b.failAll = transientErr{}
	rt := resRuntime(b)
	rt.SetFaultTolerance(FaultTolerance{MaxRetries: 10})
	rt.SetRetryBudget(RetryBudget{Tokens: 2})

	_, err := Sync(rt, 1, fnResEcho.Bind(1))
	if err == nil {
		t.Fatal("offload against an always-failing backend must fail")
	}
	var te transientErr
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want the stub's transient failure", err)
	}
	// MaxRetries would allow 10 retransmissions; the budget stops at 2.
	if rt.Retries() != 2 {
		t.Fatalf("retries = %d; budget must cap the storm at 2", rt.Retries())
	}
	if rt.BudgetDenied() != 1 {
		t.Fatalf("budgetDenied = %d, want 1", rt.BudgetDenied())
	}
}

func TestHedgeRequiresFaultTolerance(t *testing.T) {
	b := newResBackend(5 * simtime.Microsecond)
	rt := NewRuntime(b, "res-arch-noft")
	rt.SetHedging(HedgePolicy{Delay: simtime.Microsecond, Targets: []NodeID{1}})

	if v, err := Sync(rt, 1, fnResEcho.Bind(4)); err != nil || v != 4 {
		t.Fatalf("Sync = %d, %v", v, err)
	}
	if rt.Hedges() != 0 {
		t.Fatal("hedging without an FT envelope must not engage")
	}
}

func TestHedgeDelayJitterDeterministic(t *testing.T) {
	b := newResBackend(simtime.Microsecond)
	rt := resRuntime(b)
	base := 10 * simtime.Microsecond

	rt.SetHedging(HedgePolicy{Delay: base})
	if d := rt.hedgeDelay(&pending{seq: 1}); d != base {
		t.Fatalf("unseeded delay = %v, want exactly %v", d, base)
	}
	rt.SetHedging(HedgePolicy{Delay: base, Seed: 42})
	d1 := rt.hedgeDelay(&pending{seq: 1})
	d2 := rt.hedgeDelay(&pending{seq: 1})
	d3 := rt.hedgeDelay(&pending{seq: 2})
	if d1 != d2 {
		t.Fatalf("same seed+seq must jitter identically: %v vs %v", d1, d2)
	}
	if d1 < base || d1 >= base+base/4 {
		t.Fatalf("jittered delay %v outside [%v, %v)", d1, base, base+base/4)
	}
	if d1 == d3 && rt.hedgeDelay(&pending{seq: 3}) == d1 {
		t.Fatal("distinct sequence numbers should spread the jitter")
	}
}

// TestDispatchZeroAllocResilienceArmed pins the un-armed hot path with the
// resilience knobs *configured*: hedging and budgets live entirely in the
// initiator's blocking resolve (//hot:cold), so a target's Dispatch — and
// an initiator that never trips them — must stay at zero allocations per
// message exactly like the bare runtime.
func TestDispatchZeroAllocResilienceArmed(t *testing.T) {
	bk := &allocBackend{}
	rt := NewRuntime(bk, "alloc-arch-resilience")
	bk.target = rt
	rt.SetHedging(HedgePolicy{Delay: simtime.Microsecond, Targets: []NodeID{1}, Seed: 7})
	rt.SetRetryBudget(RetryBudget{Tokens: 4, Refill: simtime.Microsecond})

	fn := fnAllocInc.Bind(41)
	msg, err := rt.bin.EncodeRequest(fn.name, fn.payload)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rt.Dispatch(msg)
	})
	if allocs != 0 {
		t.Errorf("Dispatch with resilience knobs configured allocates %.1f times per message; the un-armed path is contractually zero-alloc (see docs/LINTING.md)", allocs)
	}
}
