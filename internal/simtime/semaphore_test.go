package simtime

import "testing"

func TestSemaphoreBasic(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 8)
	if s.Total() != 8 || s.Free() != 8 {
		t.Fatalf("fresh semaphore = %d/%d", s.Free(), s.Total())
	}
	e.Spawn("user", func(p *Proc) {
		got := s.Acquire(p, 3)
		if got != 3 || s.Free() != 5 {
			t.Errorf("after acquire: got %d, free %d", got, s.Free())
		}
		s.Release(3)
		if s.Free() != 8 {
			t.Errorf("after release: free %d", s.Free())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreFullWidthSerializes(t *testing.T) {
	// Two 8-core kernels on an 8-core pool must run back to back.
	e := NewEngine()
	s := NewSemaphore(e, "cores", 8)
	var done []Time
	for i := 0; i < 2; i++ {
		e.Spawn("kernel", func(p *Proc) {
			s.Use(p, 8, 100)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != 100 || done[1] != 200 {
		t.Fatalf("done = %v, want [100 200]", done)
	}
}

func TestSemaphoreHalfWidthOverlaps(t *testing.T) {
	// Two 4-core kernels fit side by side.
	e := NewEngine()
	s := NewSemaphore(e, "cores", 8)
	var done []Time
	for i := 0; i < 2; i++ {
		e.Spawn("kernel", func(p *Proc) {
			s.Use(p, 4, 100)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != 100 || done[1] != 100 {
		t.Fatalf("done = %v, want both at 100", done)
	}
}

func TestSemaphoreFIFONoOvertaking(t *testing.T) {
	// A queued 8-core request must not be overtaken by a later 1-core one.
	e := NewEngine()
	s := NewSemaphore(e, "cores", 8)
	var order []string
	e.Spawn("first", func(p *Proc) {
		s.Use(p, 6, 100)
		order = append(order, "first")
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(1)
		s.Acquire(p, 8)
		order = append(order, "big")
		p.Sleep(10)
		s.Release(8)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		s.Use(p, 1, 1)
		order = append(order, "small")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "big", "small"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSemaphoreClampsAndValidates(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, "cores", 4)
	e.Spawn("user", func(p *Proc) {
		if got := s.Acquire(p, 99); got != 4 {
			t.Errorf("oversized acquire got %d", got)
		}
		s.Release(4)
		if got := s.Acquire(p, 0); got != 1 {
			t.Errorf("zero acquire got %d", got)
		}
		s.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	s.Release(99)
}

func TestSemaphoreRejectsZeroUnits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-unit semaphore accepted")
		}
	}()
	NewSemaphore(NewEngine(), "bad", 0)
}
