package simtime

import "testing"

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(i)
			p.Sleep(10)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want 0..4 in order", got)
		}
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e, "q")
	e.Spawn("consumer", func(p *Proc) {
		v := q.Pop(p)
		if v != "hello" {
			t.Errorf("got %q", v)
		}
		if p.Now() != 25 {
			t.Errorf("received at %v, want 25", p.Now())
		}
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(25)
		q.Push("hello")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q")
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("consumer", func(p *Proc) {
			sum += q.Pop(p)
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(1)
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q")
	e.Spawn("main", func(p *Proc) {
		if _, ok := q.TryPop(); ok {
			t.Error("TryPop on empty queue returned ok")
		}
		q.Push(7)
		v, ok := q.TryPop()
		if !ok || v != 7 {
			t.Errorf("TryPop = %d,%v want 7,true", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q")
	e.Spawn("consumer", func(p *Proc) {
		if _, ok := q.PopTimeout(p, 10); ok {
			t.Error("want timeout")
		}
		if p.Now() != 10 {
			t.Errorf("timed out at %v, want 10", p.Now())
		}
		v, ok := q.PopTimeout(p, 100)
		if !ok || v != 9 {
			t.Errorf("PopTimeout = %d,%v want 9,true", v, ok)
		}
		if p.Now() != 40 {
			t.Errorf("received at %v, want 40", p.Now())
		}
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(40)
		q.Push(9)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueCompaction(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q")
	e.Spawn("main", func(p *Proc) {
		// Push/pop enough to trigger the internal head compaction.
		for i := 0; i < 1000; i++ {
			q.Push(i)
			if v := q.Pop(p); v != i {
				t.Fatalf("pop = %d, want %d", v, i)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("Len = %d, want 0", q.Len())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
