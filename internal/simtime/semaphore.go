package simtime

// Semaphore is a FIFO-served counting resource, used to model pooled
// hardware units such as the eight cores of a Vector Engine: acquirers take
// a number of units and block until that many are free, strictly in arrival
// order (no overtaking, so simulations stay deterministic and small
// requests cannot starve large ones).
type Semaphore struct {
	eng   *Engine
	name  string
	total int
	free  int
	queue []semWaiter
}

type semWaiter struct {
	w *waiter
	n int
}

// NewSemaphore returns a semaphore with the given number of units.
func NewSemaphore(e *Engine, name string, units int) *Semaphore {
	if units <= 0 {
		panic("simtime: semaphore " + name + " needs at least one unit")
	}
	return &Semaphore{eng: e, name: name, total: units, free: units}
}

// Total returns the unit count.
func (s *Semaphore) Total() int { return s.total }

// Free returns the currently available units.
func (s *Semaphore) Free() int { return s.free }

// Acquire blocks p until n units are available and takes them. Requests for
// more than the total are clamped (they would otherwise never complete).
func (s *Semaphore) Acquire(p *Proc, n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.total {
		n = s.total
	}
	// FIFO: even if units are free, queued earlier requests go first.
	if len(s.queue) == 0 && s.free >= n {
		s.free -= n
		return n
	}
	w := &waiter{p: p}
	s.queue = append(s.queue, semWaiter{w: w, n: n})
	p.park("semaphore " + s.name)
	// grant() already deducted our units before waking us.
	return n
}

// Release returns n units and grants queued requests in order.
func (s *Semaphore) Release(n int) {
	if n < 1 {
		return
	}
	s.free += n
	if s.free > s.total {
		panic("simtime: semaphore " + s.name + " over-released")
	}
	s.grant()
}

// grant wakes queued requests from the front while units suffice.
func (s *Semaphore) grant() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.w.woken {
			s.queue = s.queue[1:]
			continue
		}
		if s.free < head.n {
			return
		}
		s.free -= head.n
		s.queue = s.queue[1:]
		s.eng.schedule(s.eng.now, head.w, reasonEvent)
	}
}

// Use acquires n units, holds them for d, and releases them.
func (s *Semaphore) Use(p *Proc, n int, d Duration) {
	got := s.Acquire(p, n)
	p.Sleep(d)
	s.Release(got)
}
