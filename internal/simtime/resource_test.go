package simtime

import "testing"

func TestResourceSerializesUsers(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if r.BusyTime() != 30 {
		t.Fatalf("BusyTime = %v, want 30", r.BusyTime())
	}
	if r.Acquisitions() != 3 {
		t.Fatalf("Acquisitions = %d, want 3", r.Acquisitions())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("user", func(p *Proc) {
			p.Sleep(Duration(i)) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestResourceIdleBetweenUses(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r")
	e.Spawn("user", func(p *Proc) {
		r.Use(p, 5)
		if r.Busy() {
			t.Error("resource busy after release")
		}
		p.Sleep(100)
		r.Use(p, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.BusyTime() != 10 {
		t.Fatalf("BusyTime = %v, want 10", r.BusyTime())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Release of idle resource did not panic")
			}
		}()
		r := NewResource(e, "r")
		r.Release(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
