package simtime

// Resource is a FIFO-served exclusive resource, used to model hardware units
// that serve one request at a time, such as a PCIe link direction or a DMA
// engine. Waiters are granted the resource strictly in arrival order, which
// keeps simulations deterministic and models store-and-forward occupancy.
type Resource struct {
	eng   *Engine
	name  string
	busy  bool
	queue []*waiter

	// Stats.
	acquisitions uint64
	busyTime     Duration
	lastAcquire  Time
}

// NewResource returns an idle resource bound to the engine.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// Acquisitions returns how many times the resource has been acquired.
func (r *Resource) Acquisitions() uint64 { return r.acquisitions }

// BusyTime returns the cumulative simulated time the resource was held.
func (r *Resource) BusyTime() Duration { return r.busyTime }

// Acquire blocks p until it holds the resource.
func (r *Resource) Acquire(p *Proc) {
	if !r.busy && len(r.queue) == 0 {
		r.busy = true
		r.acquisitions++
		r.lastAcquire = p.Now()
		return
	}
	w := &waiter{p: p}
	r.queue = append(r.queue, w)
	p.park("resource " + r.name)
	// Release transferred ownership to us before waking us.
	r.acquisitions++
	r.lastAcquire = p.Now()
}

// Release hands the resource to the next waiter, or marks it idle.
func (r *Resource) Release(p *Proc) {
	if !r.busy {
		panic("simtime: Release of idle resource " + r.name)
	}
	r.busyTime += p.Now().Sub(r.lastAcquire)
	for len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		if !w.woken {
			// Ownership transfers directly; busy stays true.
			r.eng.schedule(r.eng.now, w, reasonEvent)
			return
		}
	}
	r.busy = false
}

// Use acquires the resource, holds it for d of simulated time, and releases
// it. This is the common pattern for serialization delays.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}
