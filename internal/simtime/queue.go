package simtime

// Queue is an unbounded FIFO message queue between simulated processes,
// analogous to a Go channel. Push never blocks; Pop blocks while the queue is
// empty. The zero value is not usable; create Queues with NewQueue.
type Queue[T any] struct {
	eng     *Engine
	name    string
	items   []T
	head    int
	waiters []*waiter

	// Park labels are precomputed here so that the blocking paths do not
	// rebuild "queue <name>" by string concatenation on every empty-queue
	// park.
	popLabel     string
	timeoutLabel string
}

// NewQueue returns an empty queue bound to the engine. The name appears in
// deadlock diagnostics.
func NewQueue[T any](e *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: e, name: name, popLabel: "queue " + name, timeoutLabel: "queue-timeout " + name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes one waiting consumer, if any. It may be called
// from any running process (or before Run starts).
//
//hot:path
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v) //lint:allow hotalloc amortized growth of the queue's ring storage
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if !w.woken {
			q.eng.schedule(q.eng.now, w, reasonEvent)
			return
		}
	}
}

// Pop removes and returns the oldest item, blocking p while the queue is
// empty. The waiter is only ever referenced from one place at a time — the
// wait list until wakeOne transfers it to the engine's event heap, which
// consumes it at resume — so the process's scratch waiter is safe here.
//
//hot:path
func (q *Queue[T]) Pop(p *Proc) T {
	for q.Len() == 0 {
		q.waiters = append(q.waiters, p.singleWaiter()) //lint:allow hotalloc amortized growth of the wait list
		p.park(q.popLabel)
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append([]T(nil), q.items[q.head:]...) //lint:allow hotalloc rare compaction: runs at most once per 64 pops
		q.head = 0
	}
	// More items may remain and more waiters may be parked (a woken waiter
	// could have been overtaken); keep the wake chain going.
	if q.Len() > 0 {
		q.wakeOne()
	}
	return v
}

// TryPop removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	return v, true
}

// PopTimeout is like Pop but gives up after d, returning ok=false.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (T, bool) {
	deadline := p.Now().Add(d)
	for q.Len() == 0 {
		remain := deadline.Sub(p.Now())
		if remain <= 0 {
			var zero T
			return zero, false
		}
		// Double-referenced park (wait list and timer): must not use the
		// scratch waiter — the losing reference stays behind as a stale
		// entry and would see the scratch waiter's next incarnation.
		w := &waiter{p: p}
		q.waiters = append(q.waiters, w)
		q.eng.schedule(deadline, w, reasonTimer)
		if p.park(q.timeoutLabel) == reasonTimer && q.Len() == 0 {
			var zero T
			return zero, false
		}
	}
	return q.Pop(p), true
}
