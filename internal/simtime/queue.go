package simtime

// Queue is an unbounded FIFO message queue between simulated processes,
// analogous to a Go channel. Push never blocks; Pop blocks while the queue is
// empty. The zero value is not usable; create Queues with NewQueue.
type Queue[T any] struct {
	eng     *Engine
	name    string
	items   []T
	head    int
	waiters []*waiter
}

// NewQueue returns an empty queue bound to the engine. The name appears in
// deadlock diagnostics.
func NewQueue[T any](e *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: e, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes one waiting consumer, if any. It may be called
// from any running process (or before Run starts).
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if !w.woken {
			q.eng.schedule(q.eng.now, w, reasonEvent)
			return
		}
	}
}

// Pop removes and returns the oldest item, blocking p while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.Len() == 0 {
		w := &waiter{p: p}
		q.waiters = append(q.waiters, w)
		p.park("queue " + q.name)
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append([]T(nil), q.items[q.head:]...)
		q.head = 0
	}
	// More items may remain and more waiters may be parked (a woken waiter
	// could have been overtaken); keep the wake chain going.
	if q.Len() > 0 {
		q.wakeOne()
	}
	return v
}

// TryPop removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	return v, true
}

// PopTimeout is like Pop but gives up after d, returning ok=false.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (T, bool) {
	deadline := p.Now().Add(d)
	for q.Len() == 0 {
		remain := deadline.Sub(p.Now())
		if remain <= 0 {
			var zero T
			return zero, false
		}
		w := &waiter{p: p}
		q.waiters = append(q.waiters, w)
		q.eng.schedule(deadline, w, reasonTimer)
		if p.park("queue-timeout "+q.name) == reasonTimer && q.Len() == 0 {
			var zero T
			return zero, false
		}
	}
	return q.Pop(p), true
}
