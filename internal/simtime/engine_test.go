package simtime

import (
	"errors"
	"testing"
)

// run executes a single-process simulation and fails the test on error.
func run(t *testing.T, fn func(p *Proc)) *Engine {
	t.Helper()
	e := NewEngine()
	e.Spawn("main", fn)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func TestSleepAdvancesClock(t *testing.T) {
	var at Time
	e := run(t, func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(3 * Nanosecond)
		at = p.Now()
	})
	want := Time(5*Microsecond + 3*Nanosecond)
	if at != want || e.Now() != want {
		t.Fatalf("clock = %v, want %v", at, want)
	}
}

func TestZeroSleepDoesNotAdvanceClock(t *testing.T) {
	run(t, func(p *Proc) {
		p.Sleep(0)
		p.Yield()
		if p.Now() != 0 {
			t.Errorf("clock = %v, want 0", p.Now())
		}
	})
}

func TestNegativeSleepClamped(t *testing.T) {
	run(t, func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("clock = %v, want 0", p.Now())
		}
	})
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	var order []int
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, 1)
		p.Sleep(20) // wakes at 30
		order = append(order, 3)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, 2)
		p.Sleep(20) // wakes at 40
		order = append(order, 4)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	// Processes sleeping until the same instant must wake in schedule order.
	var order []string
	e := NewEngine()
	for _, name := range []string{"p0", "p1", "p2", "p3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Sleep(100)
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"p0", "p1", "p2", "p3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	var childRan bool
	var childTime Time
	run(t, func(p *Proc) {
		p.Sleep(7)
		p.Spawn("child", func(c *Proc) {
			childRan = true
			childTime = c.Now()
		})
		p.Sleep(1) // let the child run
	})
	if !childRan {
		t.Fatal("child never ran")
	}
	if childTime != 7 {
		t.Fatalf("child started at %v, want 7", childTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("stuck", func(p *Proc) {
		ev.Wait(p) // nobody fires
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	e.Shutdown()
}

func TestStopReturnsEarly(t *testing.T) {
	e := NewEngine()
	forever := NewEvent(e)
	e.Spawn("poller", func(p *Proc) {
		for {
			p.Sleep(10)
		}
	})
	e.Spawn("main", func(p *Proc) {
		p.Sleep(105)
		e.Stop()
		forever.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 105 {
		t.Fatalf("stopped at %v, want 105", e.Now())
	}
	e.Shutdown()
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	if err := e.Run(); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
	e.Shutdown()
}

func TestDeadline(t *testing.T) {
	e := NewEngine()
	e.Deadline = 50
	e.Spawn("slow", func(p *Proc) {
		p.Sleep(1000)
	})
	if err := e.Run(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	e.Shutdown()
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil, want panic error")
	}
}

func TestEventFireReleasesAllWaiters(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			ev.Wait(p)
			woken++
			if p.Now() != 42 {
				t.Errorf("woke at %v, want 42", p.Now())
			}
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(42)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("main", func(p *Proc) {
		ev.Fire()
		before := p.Now()
		ev.Wait(p)
		if p.Now() != before {
			t.Error("Wait on fired event advanced time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("waiter", func(p *Proc) {
		if ev.WaitTimeout(p, 10) {
			t.Error("WaitTimeout reported fired, want timeout")
		}
		if p.Now() != 10 {
			t.Errorf("timed out at %v, want 10", p.Now())
		}
		// Second wait: event fires at 30, before the 100 timeout.
		if !ev.WaitTimeout(p, 100) {
			t.Error("WaitTimeout reported timeout, want fired")
		}
		if p.Now() != 30 {
			t.Errorf("woke at %v, want 30", p.Now())
		}
	})
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(30)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStaleTimeoutWakeIsSkipped(t *testing.T) {
	// The event fires before the timeout; the pending timer event must not
	// disturb the process's next, unrelated sleep.
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("waiter", func(p *Proc) {
		if !ev.WaitTimeout(p, 1000) {
			t.Error("want fired")
		}
		p.Sleep(5) // stale timer at t=1000 must not cut this short
		if p.Now() != 10 {
			t.Errorf("now = %v, want 10", p.Now())
		}
	})
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventsCounter(t *testing.T) {
	e := run(t, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
		}
	})
	// 1 spawn wake + 10 sleep wakes.
	if e.Events() != 11 {
		t.Fatalf("events = %d, want 11", e.Events())
	}
}
