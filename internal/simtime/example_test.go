package simtime_test

import (
	"fmt"
	"log"

	"hamoffload/internal/simtime"
)

// Example models a tiny producer/consumer system: a producer emits an item
// every 10 µs, a consumer needs 15 µs per item, and a FIFO queue decouples
// them. The virtual clock makes the backlog arithmetic exact.
func Example() {
	eng := simtime.NewEngine()
	q := simtime.NewQueue[int](eng, "items")

	eng.Spawn("producer", func(p *simtime.Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * simtime.Microsecond)
			q.Push(i)
		}
	})
	eng.Spawn("consumer", func(p *simtime.Proc) {
		for i := 0; i < 4; i++ {
			item := q.Pop(p)
			p.Sleep(15 * simtime.Microsecond)
			fmt.Printf("item %d done at %v\n", item, p.Now())
		}
	})

	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// item 0 done at 25us
	// item 1 done at 40us
	// item 2 done at 55us
	// item 3 done at 70us
}

// Example_resource shows FIFO serialisation on a shared hardware unit: three
// requesters of a DMA engine that serves one 20 µs transfer at a time.
func Example_resource() {
	eng := simtime.NewEngine()
	engine := simtime.NewResource(eng, "dma-engine")
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("requester", func(p *simtime.Proc) {
			engine.Use(p, 20*simtime.Microsecond)
			fmt.Printf("transfer %d finished at %v\n", i, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// transfer 0 finished at 20us
	// transfer 1 finished at 40us
	// transfer 2 finished at 60us
}
