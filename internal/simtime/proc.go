package simtime

import "errors"

// errKilled is panicked inside a parked process during Engine.Shutdown so the
// goroutine unwinds and exits.
var errKilled = errors.New("simtime: process killed by shutdown")

// Proc is one simulated process. Proc methods must only be called by the
// process itself while it is the running process; the engine guarantees that
// at most one process runs at a time.
type Proc struct {
	eng       *Engine
	name      string
	resume    chan int
	done      bool
	parked    bool
	blockedOn string // human-readable label for deadlock diagnostics
	panicked  any

	// scratch is the reusable waiter for single-reference parks (Sleep,
	// Queue.Pop, Event.Wait): exactly one pending wake references it, and
	// that wake is consumed before the process resumes, so the next park can
	// reuse it. Parks with two outstanding references — PopTimeout and
	// WaitTimeout, where a timer and a wake list both hold the waiter and
	// the loser stays behind as a stale entry — must allocate a fresh waiter
	// instead.
	scratch waiter
}

// singleWaiter re-arms the process's scratch waiter for a park whose wake
// will be referenced from exactly one place. See the scratch field comment
// for why double-referenced parks may not use it.
func (p *Proc) singleWaiter() *waiter {
	p.scratch.p = p
	p.scratch.woken = false
	return &p.scratch
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park hands control back to the engine and blocks until a wake event for
// this process is delivered. It returns the wake reason.
func (p *Proc) park(label string) int {
	p.parked = true
	p.blockedOn = label
	p.eng.yield <- struct{}{}
	r := <-p.resume
	if r == reasonKill {
		panic(errKilled)
	}
	return r
}

// Sleep suspends the process for d of simulated time. Non-positive durations
// still yield to the scheduler (other events at the current time run first).
//
//hot:path
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now.Add(d), p.singleWaiter(), reasonTimer)
	p.park("sleep")
}

// Yield reschedules the process at the current time behind already-pending
// events, giving other runnable processes a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process; sugar for p.Engine().Spawn.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.eng.Spawn(name, fn)
}

// Event is a one-shot broadcast synchronization point: processes Wait until
// some process calls Fire, after which all current and future waiters pass
// immediately. The zero value is not usable; create Events with NewEvent.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []*waiter
}

// NewEvent returns an unfired event bound to the engine.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire releases all waiters at the current simulated time. Firing an already
// fired event is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if !w.woken {
			ev.eng.schedule(ev.eng.now, w, reasonEvent)
		}
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if already fired.
// The only wake source for this park is Fire, which consumes the waiter list,
// so the process's scratch waiter is safe here.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p.singleWaiter())
	p.park("event")
}

// WaitTimeout blocks p until the event fires or d elapses. It reports whether
// the event fired (true) as opposed to the timeout expiring (false).
func (ev *Event) WaitTimeout(p *Proc, d Duration) bool {
	if ev.fired {
		return true
	}
	w := &waiter{p: p}
	ev.waiters = append(ev.waiters, w)
	ev.eng.schedule(p.eng.now.Add(d), w, reasonTimer)
	return p.park("event-timeout") == reasonEvent
}
