package simtime

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDeadlock is returned by Run when no process can make progress: the event
// queue is empty but parked processes remain.
var ErrDeadlock = errors.New("simtime: deadlock: no pending events but processes are parked")

// ErrEventLimit is returned by Run when the configured event budget is
// exhausted, which usually indicates a runaway polling loop.
var ErrEventLimit = errors.New("simtime: event limit exceeded")

// ErrDeadline is returned by Run when simulated time passes the configured
// deadline.
var ErrDeadline = errors.New("simtime: simulated-time deadline exceeded")

// wake reasons delivered to a parked process.
const (
	reasonTimer = iota // Sleep expiry or wait timeout
	reasonEvent        // an Event fired / a Queue item arrived / a Resource was granted
	reasonKill         // engine shutdown; park panics with errKilled
)

// waiter represents one parked process. Wake events reference waiters rather
// than processes so that a stale wake (e.g. a timeout racing an Event fire)
// is skipped instead of waking an unrelated, later wait of the same process.
type waiter struct {
	p     *Proc
	woken bool
}

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	w   *waiter
	rsn int
}

// eventQueue is a binary min-heap ordered by (at, seq). It is a concrete
// heap rather than a container/heap adapter: the adapter's `any` interface
// boxes every pushed event onto the Go heap, which dominated the simulator's
// allocation profile. Pop order is unaffected by the change — (at, seq) is a
// strict total order (seq is unique), so any correct heap pops the same
// sequence.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev) //lint:allow hotalloc amortized growth of the engine's event heap
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	ev := h[0]
	h[0] = h[n]
	h[n] = event{} // release the waiter reference
	h = h[:n]
	*q = h
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(r, c) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return ev
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use from multiple OS threads; all interaction happens either
// from the goroutine calling Run or from the single currently-running Proc.
type Engine struct {
	now    Time
	eq     eventQueue
	seq    uint64
	yield  chan struct{} // running proc -> engine: "I parked or finished"
	live   int           // procs that have been spawned and not yet finished
	stop   bool
	events uint64
	maxq   int // event-queue high-water mark, for the engine profiler

	// MaxEvents bounds the total number of processed wake events; zero means
	// the default of 1<<40. Exceeding it aborts Run with ErrEventLimit.
	MaxEvents uint64
	// Deadline bounds simulated time; zero means no deadline. An event
	// scheduled past the deadline aborts Run with ErrDeadline.
	Deadline Time

	procs []*Proc // all spawned procs, for diagnostics and shutdown
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of wake events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// QueueLen returns the number of pending wake events right now.
func (e *Engine) QueueLen() int { return len(e.eq) }

// MaxQueueLen returns the event-queue high-water mark: the largest number
// of wake events that were ever pending at once.
func (e *Engine) MaxQueueLen() int { return e.maxq }

// Spawn registers fn as a new process named name. The process starts running
// at the current simulated time, after already-pending events at that time.
// Spawn may be called before Run or from within a running process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan int),
	}
	e.live++
	p.parked = true
	p.blockedOn = "spawn"
	e.procs = append(e.procs, p)
	w := &waiter{p: p}
	e.schedule(e.now, w, reasonEvent)
	//lint:allow goroutine Spawn IS the sanctioned concurrency primitive: the
	// goroutine below is engine-owned and serialized by the park/resume
	// handshake, so exactly one process ever runs at a time.
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r == errKilled {
					p.done = true
					e.yield <- struct{}{}
					return
				}
				p.panicked = r
			}
			p.done = true
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.resume // wait for first scheduling
		fn(p)
	}()
	return p
}

// schedule enqueues a wake for w at time at.
//
//hot:path
func (e *Engine) schedule(at Time, w *waiter, rsn int) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.eq.push(event{at: at, seq: e.seq, w: w, rsn: rsn})
	if len(e.eq) > e.maxq {
		e.maxq = len(e.eq)
	}
}

// Stop requests that Run return after the calling process next parks or
// finishes. Remaining processes stay parked and are reclaimed by Shutdown.
func (e *Engine) Stop() { e.stop = true }

// Run executes the simulation until all processes finish, a process calls
// Stop, the event budget or deadline is exceeded, or a deadlock is detected.
func (e *Engine) Run() error {
	maxEvents := e.MaxEvents
	if maxEvents == 0 {
		maxEvents = 1 << 40
	}
	for {
		if e.stop {
			return nil
		}
		if e.live == 0 {
			return e.firstPanic()
		}
		if len(e.eq) == 0 {
			return e.deadlockError()
		}
		ev := e.eq.pop()
		if ev.w.woken {
			continue // stale wake (e.g. timeout lost to an Event fire)
		}
		if e.Deadline != 0 && ev.at > e.Deadline {
			return deadlineError(ev.at)
		}
		e.events++
		if e.events > maxEvents {
			return limitError(maxEvents)
		}
		e.now = ev.at
		ev.w.woken = true
		ev.w.p.parked = false
		ev.w.p.resume <- ev.rsn
		<-e.yield
		if p := e.firstPanic(); p != nil {
			return p
		}
	}
}

// Shutdown kills all parked processes so their goroutines exit. It must be
// called after Run returns, never concurrently with it.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if !p.done && p.parked {
			p.parked = false
			p.resume <- reasonKill
			<-e.yield
		}
	}
}

// firstPanic scans for a panicked process. The scan itself runs after every
// wake event, but only allocates (the fmt.Errorf) when a panic is actually
// found, which aborts the run.
//
//hot:cold
func (e *Engine) firstPanic() error {
	for _, p := range e.procs {
		if p.panicked != nil {
			return fmt.Errorf("simtime: process %q panicked: %v", p.name, p.panicked)
		}
	}
	return nil
}

// deadlineError terminates the run; it allocates once.
//
//hot:cold
func deadlineError(at Time) error {
	return fmt.Errorf("%w (at %v)", ErrDeadline, at)
}

// limitError terminates the run; it allocates once.
//
//hot:cold
func limitError(maxEvents uint64) error {
	return fmt.Errorf("%w (%d events)", ErrEventLimit, maxEvents)
}

//hot:cold
func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.done && p.parked {
			stuck = append(stuck, p.name+" ("+p.blockedOn+")")
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("%w: at t=%v: %v", ErrDeadlock, e.now, stuck)
}
