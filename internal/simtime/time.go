// Package simtime provides a deterministic, cooperative discrete-event
// simulation (DES) engine.
//
// A simulation consists of an Engine and a set of processes (Proc). Exactly
// one process runs at any moment; processes hand control back to the engine
// whenever they block (Sleep, Event.Wait, Queue.Pop, Resource.Acquire). The
// engine advances a virtual clock from event to event, so simulated time is
// completely decoupled from wall-clock time and every run of the same program
// is bit-for-bit reproducible.
//
// Virtual time is measured in integer picoseconds. Picosecond resolution
// matters for this repository's workload: an 8-byte PCIe word at ~10 GB/s
// occupies the link for ~800 ps, which would round to zero at nanosecond
// resolution and accumulate large errors over a bandwidth sweep.
package simtime

import "fmt"

// Time is an absolute simulation timestamp in picoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations, expressed in picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Picoseconds returns d as an integer picosecond count.
func (d Duration) Picoseconds() int64 { return int64(d) }

// Nanoseconds returns d rounded down to nanoseconds.
func (d Duration) Nanoseconds() int64 { return int64(d / Nanosecond) }

// Microseconds returns d as a floating-point microsecond count.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns d as a floating-point second count.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit, e.g. "6.1us".
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%s%.3gns", neg, float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%s%.4gus", neg, float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%s%.4gms", neg, float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.4gs", neg, float64(d)/float64(Second))
	}
}

// String formats the timestamp as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Microseconds returns the time since simulation start as a floating-point
// microsecond count — the unit of the Chrome trace-event format.
func (t Time) Microseconds() float64 { return Duration(t).Microseconds() }

// PerByte converts a transfer rate in bytes/second into the duration one byte
// occupies, for serialization-delay computations. Rates below 1 B/s are
// rejected at construction time by the callers in internal/pcie.
func PerByte(bytesPerSecond float64) Duration {
	return Duration(float64(Second) / bytesPerSecond)
}

// BytesOver returns the serialization delay of n bytes at the given rate in
// bytes/second, rounded up to a whole picosecond.
func BytesOver(n int64, bytesPerSecond float64) Duration {
	if n <= 0 {
		return 0
	}
	ps := float64(n) * float64(Second) / bytesPerSecond
	d := Duration(ps)
	if float64(d) < ps {
		d++
	}
	return d
}
