package simtime

import "testing"

// BenchmarkEventThroughput measures the DES kernel's raw event rate — the
// figure that bounds how fast bandwidth sweeps and offload loops simulate.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("spinner", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPingPong measures two processes handing control back and forth
// through a queue — the message-loop pattern of every backend.
func BenchmarkPingPong(b *testing.B) {
	e := NewEngine()
	req := NewQueue[int](e, "req")
	resp := NewQueue[int](e, "resp")
	n := b.N
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < n; i++ {
			v := req.Pop(p)
			resp.Push(v + 1)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < n; i++ {
			req.Push(i)
			if got := resp.Pop(p); got != i+1 {
				b.Errorf("got %d", got)
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures FIFO resource hand-off under load.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "link")
	const workers = 8
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		e.Spawn("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Use(p, 10)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
