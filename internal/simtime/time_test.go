package simtime

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{6100 * Nanosecond, "6.1us"},
		{432 * Microsecond, "432us"},
		{15 * Millisecond, "15ms"},
		{2 * Second, "2s"},
		{-3 * Nanosecond, "-3ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestBytesOver(t *testing.T) {
	// 1 GiB at 1 GiB/s is exactly one second.
	gib := int64(1) << 30
	if d := BytesOver(gib, float64(gib)); d != Second {
		t.Errorf("BytesOver(1GiB, 1GiB/s) = %v, want 1s", d)
	}
	if d := BytesOver(0, 1e9); d != 0 {
		t.Errorf("BytesOver(0) = %v, want 0", d)
	}
	if d := BytesOver(-5, 1e9); d != 0 {
		t.Errorf("BytesOver(-5) = %v, want 0", d)
	}
	// Rounds up: 1 byte at an enormous rate still costs at least 1 ps.
	if d := BytesOver(1, 1e15); d < 1 {
		t.Errorf("BytesOver(1, 1e15) = %v, want >= 1ps", d)
	}
}

func TestTimeAddSub(t *testing.T) {
	tm := Time(100)
	if tm.Add(50) != Time(150) {
		t.Error("Add failed")
	}
	if Time(150).Sub(tm) != 50 {
		t.Error("Sub failed")
	}
}

// Property: BytesOver is monotonic in n and never undershoots the exact
// rational value.
func TestBytesOverMonotoneProperty(t *testing.T) {
	f := func(a, b uint32, rateMBs uint16) bool {
		rate := float64(rateMBs%1000+1) * 1e6
		n, m := int64(a%(1<<26)), int64(b%(1<<26))
		if n > m {
			n, m = m, n
		}
		dn, dm := BytesOver(n, rate), BytesOver(m, rate)
		if dn > dm {
			return false
		}
		exact := float64(n) * float64(Second) / rate
		return float64(dn) >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: processes sleeping for arbitrary durations always observe a
// non-decreasing clock equal to the sum of their sleeps.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		ok := true
		e.Spawn("p", func(p *Proc) {
			var total Duration
			for _, r := range raw {
				d := Duration(r)
				total += d
				p.Sleep(d)
				if p.Now() != Time(total) {
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: N processes each sleeping a random duration wake in sorted order
// of duration (ties broken by spawn order).
func TestWakeOrderProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 50 {
			durs = durs[:50]
		}
		e := NewEngine()
		var woke []int
		for i, d := range durs {
			i, d := i, d
			e.Spawn("p", func(p *Proc) {
				p.Sleep(Duration(d))
				woke = append(woke, i)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		// Verify sorted by (duration, index).
		for k := 1; k < len(woke); k++ {
			a, b := woke[k-1], woke[k]
			if durs[a] > durs[b] || (durs[a] == durs[b] && a > b) {
				return false
			}
		}
		return len(woke) == len(durs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
