// Package faults is the deterministic fault-injection subsystem for the
// simulated machine. A Plan describes which faults to inject — keyed to
// per-site operation counts, to simulated-time windows, or drawn from a
// seed-derived deterministic stream — and an Injector compiled from it is
// consulted at well-defined hook points in the substrates (internal/dma,
// internal/veos, internal/pcie) and the communication backends.
//
// Determinism is the whole point: the same Plan against the same workload
// injects the same faults at the same simulated instants, so chaos tests are
// bit-reproducible in a way real SX-Aurora hardware never is. No math/rand
// global and no wall clock are involved; the probabilistic mode uses a
// splitmix64-style hash of (seed, rule, site, node, op index).
//
// Like internal/trace, the zero value is free: a nil *Injector is valid and
// every method on it is a no-op, so un-faulted runs pay a single nil check
// per hook point.
package faults

import (
	"fmt"
	"sync"

	"hamoffload/internal/simtime"
)

// Kind enumerates the fault classes the injector can produce.
type Kind uint8

const (
	// DMAError fails a DMA transfer (privileged or user DMA, or an LHM
	// access) before any data moves: a failed transfer delivers nothing.
	DMAError Kind = iota + 1
	// BitFlip corrupts one payload byte of a transfer after the data moved.
	// Transfers of 8 bytes or fewer (protocol flag words) are never flipped:
	// flag corruption would wedge the polling protocols rather than surface
	// as a detectable payload error.
	BitFlip
	// Stall delays VEOS daemon operations (process control, privileged DMA
	// syscall paths) until the end of the rule's time window.
	Stall
	// Crash kills a VE process: the card refuses further work until it is
	// recovered via a fresh process.
	Crash
	// LinkDown fails every transfer crossing a PCIe link during the rule's
	// time window.
	LinkDown
	// ConnReset drops a wall-clock backend connection (tcpb).
	ConnReset
	// SlowDown is the fail-slow fault: matching operations still succeed but
	// take Rule.Factor times their nominal cost. A window-mode SlowDown rule
	// on one node is the canonical "sick but alive" VE — degraded DMA, slow
	// VEOS service, a link retrained to a lower speed — that fail-stop
	// detection never sees.
	SlowDown
	// Jitter adds seed-derived latency noise to matching operations, drawn
	// uniformly in [0, Rule.JitterMax) from the plan's splitmix64 stream.
	// Combined with SlowDown it models the erratic response times of a
	// gray-failing card rather than a cleanly proportional slowdown.
	Jitter
)

// String names the fault kind for diagnostics and trace events.
func (k Kind) String() string {
	switch k {
	case DMAError:
		return "dma-error"
	case BitFlip:
		return "bit-flip"
	case Stall:
		return "veos-stall"
	case Crash:
		return "ve-crash"
	case LinkDown:
		return "link-down"
	case ConnReset:
		return "conn-reset"
	case SlowDown:
		return "slow-down"
	case Jitter:
		return "jitter"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Site identifies the hook point consulting the injector. SiteAny in a rule
// matches every site.
type Site uint8

const (
	// SiteAny matches any site when used in a Rule.
	SiteAny Site = iota
	// SitePrivDMA is the privileged-DMA engine (veo_write_mem/veo_read_mem
	// paths, the veob protocol's transport).
	SitePrivDMA
	// SiteUserDMA is the user-DMA engine (the dmab protocol's bulk fetch).
	SiteUserDMA
	// SiteLHM is VE load/store to host memory (dmab flag polling and inline
	// results).
	SiteLHM
	// SiteVEOS is the VEOS daemon syscall path (process control, DMA
	// requests).
	SiteVEOS
	// SiteConn is a wall-clock backend's transport (locb channel, tcpb
	// socket).
	SiteConn
	// SitePCIe is a PCIe link's serialization path: fail-slow rules here
	// stretch the link occupancy itself, degrading every transfer that
	// crosses the link (a link renegotiated to a lower generation speed).
	SitePCIe
)

// String names the site for diagnostics and trace events.
func (s Site) String() string {
	switch s {
	case SiteAny:
		return "any"
	case SitePrivDMA:
		return "priv-dma"
	case SiteUserDMA:
		return "user-dma"
	case SiteLHM:
		return "lhm"
	case SiteVEOS:
		return "veos"
	case SiteConn:
		return "conn"
	case SitePCIe:
		return "pcie"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// AnyNode in Rule.Node matches every node.
const AnyNode = -1

// Rule schedules one fault. Three scheduling modes, chosen by field shape:
//
//   - Rate > 0: probabilistic — each matching operation fires with the given
//     probability, drawn from the plan seed (deterministic across runs).
//   - Until > 0 (and Rate == 0): time window — every matching operation with
//     From <= now < Until fires. This is the natural mode for Stall and
//     LinkDown, and never fires on wall-clock backends (which pass now = 0).
//   - otherwise: op-scheduled — fires on the AfterOp-th matching operation
//     (0-based, counted per (kind, site, node)), then Count-1 more times,
//     every Every-th operation (Every == 0 means consecutive operations).
//
// Kind is mandatory. Site/Node restrict the hook points the rule matches;
// the zero Site (SiteAny) and AnyNode match everything.
type Rule struct {
	Kind Kind
	Site Site
	Node int // a node id, or AnyNode

	// Op-scheduled mode.
	AfterOp uint64
	Count   int // fires, 0 means 1
	Every   uint64

	// Time-window mode (simulated clock).
	From  simtime.Time
	Until simtime.Time

	// Probabilistic mode.
	Rate float64

	// StallFor is the stall duration for Stall rules in op-scheduled or
	// probabilistic mode; window-mode stalls last until Until.
	StallFor simtime.Duration

	// Factor is the latency multiplier of SlowDown rules: a matching
	// operation of nominal cost c takes Factor×c (Factor 10 = degraded 10×).
	// Values at or below 1 inject nothing.
	Factor float64

	// JitterMax bounds the extra latency of Jitter rules; each firing adds
	// a seed-derived duration in [0, JitterMax).
	JitterMax simtime.Duration
}

// Plan is a complete fault schedule: a seed for the probabilistic stream
// plus any number of rules. The zero Plan injects nothing.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Error is the error value for an injected transfer-level fault. It is
// classified transient for every kind except Crash, so the runtime's
// retry machinery (core.IsTransient) backs off and retries it.
type Error struct {
	Kind Kind
	Site Site
	Node int
	Op   uint64 // the per-(kind,site,node) operation index that fired
}

// Error formats the injected fault.
func (e *Error) Error() string {
	return fmt.Sprintf("injected fault: %v at %v node %d op %d", e.Kind, e.Site, e.Node, e.Op)
}

// Transient reports whether the fault is worth retrying. Everything but a
// process crash is: the next attempt draws a fresh op index.
func (e *Error) Transient() bool { return e.Kind != Crash }

// opKey counts operations per (kind, site, node), so rule op indices are
// insensitive to unrelated traffic.
type opKey struct {
	kind Kind
	site Site
	node int
}

// Injector is the compiled, concurrency-safe decision engine for a Plan.
// nil is a valid receiver for every method and decides "no fault".
// Methods take the current simulated time where time-window rules apply;
// wall-clock callers pass 0.
type Injector struct {
	mu       sync.Mutex
	seed     uint64
	rules    []Rule
	left     []int // remaining fires per op-scheduled rule; -1 = not op-scheduled
	ops      map[opKey]uint64
	injected uint64
}

// New compiles a plan. A nil plan yields a nil injector, the zero-cost
// default.
func New(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{
		seed:  p.Seed,
		rules: append([]Rule(nil), p.Rules...),
		left:  make([]int, len(p.Rules)),
		ops:   make(map[opKey]uint64),
	}
	for i, r := range in.rules {
		if r.Rate > 0 || r.Until > 0 {
			in.left[i] = -1
			continue
		}
		if r.Count <= 0 {
			in.left[i] = 1
		} else {
			in.left[i] = r.Count
		}
	}
	return in
}

// Injected returns how many faults have fired so far. Deterministic runs
// must agree on this number; chaos tests assert on it.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// fire advances the (kind, site, node) op counter and reports whether any
// rule fires for this operation, returning the matched rule.
func (in *Injector) fire(kind Kind, site Site, node int, now simtime.Time) (Rule, uint64, bool) {
	key := opKey{kind, site, node}
	op := in.ops[key]
	in.ops[key] = op + 1
	for i := range in.rules {
		r := &in.rules[i]
		if r.Kind != kind {
			continue
		}
		if r.Site != SiteAny && r.Site != site {
			continue
		}
		if r.Node != AnyNode && r.Node != node {
			continue
		}
		switch {
		case r.Rate > 0:
			if r.Until > 0 && (now < r.From || now >= r.Until) {
				continue
			}
			h := mix(in.seed, uint64(i), uint64(kind)<<16|uint64(site)<<8, uint64(node), op)
			if float64(h>>11)/(1<<53) >= r.Rate {
				continue
			}
		case r.Until > 0:
			if now < r.From || now >= r.Until {
				continue
			}
		default:
			if op < r.AfterOp || in.left[i] == 0 {
				continue
			}
			if r.Every > 0 && (op-r.AfterOp)%r.Every != 0 {
				continue
			}
			in.left[i]--
		}
		in.injected++
		return *r, op, true
	}
	return Rule{}, op, false
}

// TransferError decides whether the transfer at site/node fails. The hook
// point must consult it before moving any data: a failed transfer delivers
// nothing.
func (in *Injector) TransferError(now simtime.Time, site Site, node int) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, op, ok := in.fire(DMAError, site, node, now); ok {
		return &Error{Kind: DMAError, Site: site, Node: node, Op: op}
	}
	return nil
}

// Corrupt decides whether an n-byte transfer gets one payload byte flipped,
// returning the byte offset to corrupt, or -1. Transfers of 8 bytes or
// fewer are never corrupted (see BitFlip).
func (in *Injector) Corrupt(now simtime.Time, site Site, node int, n int64) int64 {
	if in == nil || n <= 8 {
		return -1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, op, ok := in.fire(BitFlip, site, node, now); ok {
		return int64(mix(in.seed, uint64(BitFlip), uint64(site), uint64(node), op) % uint64(n))
	}
	return -1
}

// StallDelay decides whether a VEOS operation at node stalls, returning the
// extra simulated delay to serve (0 = none).
func (in *Injector) StallDelay(now simtime.Time, node int) simtime.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, _, ok := in.fire(Stall, SiteVEOS, node, now)
	if !ok {
		return 0
	}
	if r.StallFor > 0 {
		return r.StallFor
	}
	if r.Until > now {
		return r.Until.Sub(now)
	}
	return 0
}

// SlowDelay decides how much extra simulated latency the operation at
// site/node suffers, given the operation's nominal cost. SlowDown rules
// scale the nominal cost (Factor 10 returns 9×base so the total is 10×);
// Jitter rules add noise drawn uniformly in [0, JitterMax) from the plan's
// splitmix64 stream. Unlike TransferError the operation still succeeds:
// this is the gray-failure hook, a node that is sick but alive.
func (in *Injector) SlowDelay(now simtime.Time, site Site, node int, base simtime.Duration) simtime.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var extra simtime.Duration
	if r, _, ok := in.fire(SlowDown, site, node, now); ok && r.Factor > 1 && base > 0 {
		extra += simtime.Duration(float64(base) * (r.Factor - 1))
	}
	if r, op, ok := in.fire(Jitter, site, node, now); ok && r.JitterMax > 0 {
		h := mix(in.seed, uint64(Jitter), uint64(site)<<16|uint64(node), op)
		extra += simtime.Duration(h % uint64(r.JitterMax))
	}
	return extra
}

// CrashNow decides whether the VE process on node crashes at this
// operation. The caller (the VEOS layer) records the crash; the injector
// only schedules it.
func (in *Injector) CrashNow(now simtime.Time, node int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	_, _, ok := in.fire(Crash, SiteVEOS, node, now)
	return ok
}

// LinkError decides whether a transfer crossing node's PCIe link fails
// because the link is down.
func (in *Injector) LinkError(now simtime.Time, node int) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, op, ok := in.fire(LinkDown, SiteAny, node, now); ok {
		return &Error{Kind: LinkDown, Site: SiteAny, Node: node, Op: op}
	}
	return nil
}

// ConnReset decides whether a wall-clock backend connection to node drops
// at this operation.
func (in *Injector) ConnReset(node int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	_, _, ok := in.fire(ConnReset, SiteConn, node, 0)
	return ok
}

// Seed returns the plan seed the injector's deterministic stream is keyed
// by (0 for a nil injector). Consumers that need their own seed-derived
// randomness — the runtime's retry backoff and hedge-delay jitter — key it
// off the same plan seed so one number reproduces the whole chaos run.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Mix is the exported splitmix64 finalizer behind every seed-derived
// decision in this package. Other packages that need deterministic
// pseudo-randomness (core's backoff and hedge-delay jitter) must draw from
// this stream rather than rolling their own source, so a chaos plan's seed
// governs every random choice of the run.
func Mix(vals ...uint64) uint64 { return mix(vals...) }

// mix folds the inputs through a splitmix64-style finalizer — a fixed,
// platform-independent stream that stands in for math/rand.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
