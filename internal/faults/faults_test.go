package faults

import (
	"errors"
	"testing"

	"hamoffload/internal/simtime"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.TransferError(0, SitePrivDMA, 1); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if off := in.Corrupt(0, SiteUserDMA, 1, 4096); off != -1 {
		t.Fatalf("nil injector corrupted at %d", off)
	}
	if d := in.StallDelay(0, 1); d != 0 {
		t.Fatalf("nil injector stalled %v", d)
	}
	if in.CrashNow(0, 1) || in.ConnReset(1) {
		t.Fatal("nil injector crashed/reset")
	}
	if err := in.LinkError(0, 1); err != nil {
		t.Fatalf("nil injector link error: %v", err)
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector counted injections")
	}
	if New(nil) != nil {
		t.Fatal("New(nil) must return a nil injector")
	}
}

func TestOpScheduledRule(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: DMAError, Site: SitePrivDMA, Node: 1, AfterOp: 2, Count: 2},
	}})
	var errs []int
	for op := 0; op < 6; op++ {
		if err := in.TransferError(0, SitePrivDMA, 1); err != nil {
			errs = append(errs, op)
			var fe *Error
			if !errors.As(err, &fe) || !fe.Transient() {
				t.Fatalf("op %d: want transient *Error, got %v", op, err)
			}
		}
	}
	if len(errs) != 2 || errs[0] != 2 || errs[1] != 3 {
		t.Fatalf("fired at %v, want [2 3]", errs)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", in.Injected())
	}
	// Other sites and nodes share nothing with the matched counter.
	if err := in.TransferError(0, SiteUserDMA, 1); err != nil {
		t.Fatalf("unmatched site fired: %v", err)
	}
	if err := in.TransferError(0, SitePrivDMA, 2); err != nil {
		t.Fatalf("unmatched node fired: %v", err)
	}
}

func TestEveryStride(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: DMAError, Site: SiteConn, Node: AnyNode, AfterOp: 1, Count: 3, Every: 2},
	}})
	var fired []int
	for op := 0; op < 10; op++ {
		if in.TransferError(0, SiteConn, 0) != nil {
			fired = append(fired, op)
		}
	}
	want := []int{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestTimeWindowRules(t *testing.T) {
	us := simtime.Microsecond
	in := New(&Plan{Rules: []Rule{
		{Kind: Stall, Node: 0, From: simtime.Time(10 * us), Until: simtime.Time(20 * us)},
		{Kind: LinkDown, Node: 1, From: simtime.Time(5 * us), Until: simtime.Time(6 * us)},
	}})
	if d := in.StallDelay(simtime.Time(9*us), 0); d != 0 {
		t.Fatalf("stall before window: %v", d)
	}
	if d := in.StallDelay(simtime.Time(12*us), 0); d != 8*us {
		t.Fatalf("stall = %v, want %v", d, 8*us)
	}
	if d := in.StallDelay(simtime.Time(20*us), 0); d != 0 {
		t.Fatalf("stall at window end: %v", d)
	}
	if err := in.LinkError(simtime.Time(5*us), 1); err == nil {
		t.Fatal("link up inside down window")
	}
	if err := in.LinkError(simtime.Time(6*us), 1); err != nil {
		t.Fatalf("link down after window: %v", err)
	}
	// Wall-clock callers pass now = 0: window rules never fire.
	if d := in.StallDelay(0, 0); d != 0 {
		t.Fatalf("window rule fired at time 0: %v", d)
	}
}

func TestProbabilisticStreamIsDeterministic(t *testing.T) {
	run := func() []int {
		in := New(&Plan{Seed: 42, Rules: []Rule{
			{Kind: DMAError, Site: SiteUserDMA, Node: AnyNode, Rate: 0.3},
		}})
		var fired []int
		for op := 0; op < 200; op++ {
			if in.TransferError(0, SiteUserDMA, 3) != nil {
				fired = append(fired, op)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("rate 0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs disagree at fire %d: op %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed draws a different stream.
	in2 := New(&Plan{Seed: 43, Rules: []Rule{
		{Kind: DMAError, Site: SiteUserDMA, Node: AnyNode, Rate: 0.3},
	}})
	var c []int
	for op := 0; op < 200; op++ {
		if in2.TransferError(0, SiteUserDMA, 3) != nil {
			c = append(c, op)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical streams")
	}
}

func TestCorruptSkipsFlagWords(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: BitFlip, Site: SitePrivDMA, Node: AnyNode, AfterOp: 0, Count: 100},
	}})
	if off := in.Corrupt(0, SitePrivDMA, 0, 8); off != -1 {
		t.Fatalf("8-byte transfer corrupted at %d", off)
	}
	off := in.Corrupt(0, SitePrivDMA, 0, 100)
	if off < 0 || off >= 100 {
		t.Fatalf("corrupt offset %d out of range", off)
	}
}

func TestCrashAndReset(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: Crash, Node: 1, AfterOp: 1},
		{Kind: ConnReset, Node: 2, AfterOp: 0},
	}})
	if in.CrashNow(0, 1) {
		t.Fatal("crashed before AfterOp")
	}
	if !in.CrashNow(0, 1) {
		t.Fatal("no crash at AfterOp")
	}
	if in.CrashNow(0, 1) {
		t.Fatal("crash rule fired twice")
	}
	if !in.ConnReset(2) {
		t.Fatal("no reset at op 0")
	}
	if in.ConnReset(3) {
		t.Fatal("reset on unmatched node")
	}
}

func TestSlowDelayNilAndUnmatched(t *testing.T) {
	var nilIn *Injector
	if d := nilIn.SlowDelay(0, SiteVEOS, 1, simtime.Microsecond); d != 0 {
		t.Fatalf("nil injector slowed %v", d)
	}
	if nilIn.Seed() != 0 {
		t.Fatal("nil injector must report seed 0")
	}
	in := New(&Plan{Rules: []Rule{
		{Kind: SlowDown, Site: SiteVEOS, Node: 1, Until: simtime.Time(simtime.Second), Factor: 10},
	}})
	if d := in.SlowDelay(0, SiteVEOS, 2, simtime.Microsecond); d != 0 {
		t.Fatalf("unmatched node slowed %v", d)
	}
	if d := in.SlowDelay(0, SiteUserDMA, 1, simtime.Microsecond); d != 0 {
		t.Fatalf("unmatched site slowed %v", d)
	}
}

func TestSlowDownFactorScalesBase(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: SlowDown, Site: SiteVEOS, Node: 1, Until: simtime.Time(simtime.Second), Factor: 10},
	}})
	base := 18 * simtime.Microsecond
	// Factor 10 means the operation takes 10× its nominal cost: the hook
	// returns the *extra* 9× the caller sleeps on top of the base.
	if d := in.SlowDelay(0, SiteVEOS, 1, base); d != 9*base {
		t.Fatalf("SlowDelay = %v, want %v", d, 9*base)
	}
	// Outside the window the node runs at full speed again.
	if d := in.SlowDelay(simtime.Time(2*simtime.Second), SiteVEOS, 1, base); d != 0 {
		t.Fatalf("slow-down fired outside its window: %v", d)
	}
	// Factor <= 1 and zero base inject nothing.
	if d := in.SlowDelay(0, SiteVEOS, 1, 0); d != 0 {
		t.Fatalf("zero base slowed %v", d)
	}
	lame := New(&Plan{Rules: []Rule{
		{Kind: SlowDown, Site: SiteVEOS, Node: 1, Until: simtime.Time(simtime.Second), Factor: 1},
	}})
	if d := lame.SlowDelay(0, SiteVEOS, 1, base); d != 0 {
		t.Fatalf("factor 1 slowed %v", d)
	}
}

func TestJitterIsBoundedAndSeedDeterministic(t *testing.T) {
	plan := &Plan{Seed: 99, Rules: []Rule{
		{Kind: Jitter, Site: SitePCIe, Node: AnyNode, Rate: 1, JitterMax: 4 * simtime.Microsecond},
	}}
	run := func() []simtime.Duration {
		in := New(plan)
		var ds []simtime.Duration
		for op := 0; op < 32; op++ {
			ds = append(ds, in.SlowDelay(0, SitePCIe, 0, simtime.Microsecond))
		}
		return ds
	}
	a, b := run(), run()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: jitter not reproducible across identical plans (%v vs %v)", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 4*simtime.Microsecond {
			t.Fatalf("op %d: jitter %v outside [0, JitterMax)", i, a[i])
		}
		if i > 0 && a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("32 jitter draws were all identical; the stream should vary per op")
	}
	// A different seed draws a different stream.
	other := New(&Plan{Seed: 100, Rules: plan.Rules})
	diff := false
	for op := 0; op < 32; op++ {
		if other.SlowDelay(0, SitePCIe, 0, simtime.Microsecond) != a[op] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestSlowDownAndJitterCompose(t *testing.T) {
	in := New(&Plan{Seed: 7, Rules: []Rule{
		{Kind: SlowDown, Site: SiteVEOS, Node: 1, Until: simtime.Time(simtime.Second), Factor: 3},
		{Kind: Jitter, Site: SiteVEOS, Node: 1, Rate: 1, JitterMax: simtime.Microsecond},
	}})
	base := 10 * simtime.Microsecond
	d := in.SlowDelay(0, SiteVEOS, 1, base)
	if d < 2*base || d >= 2*base+simtime.Microsecond {
		t.Fatalf("composed delay %v outside [%v, %v)", d, 2*base, 2*base+simtime.Microsecond)
	}
	if in.Injected() < 2 {
		t.Fatalf("Injected = %d, want both rules counted", in.Injected())
	}
}

func TestMixMatchesInternalStream(t *testing.T) {
	if Mix(1, 2, 3) != mix(1, 2, 3) {
		t.Fatal("exported Mix must be the injector's own stream")
	}
	if Mix(1) == Mix(2) {
		t.Fatal("Mix must spread distinct inputs")
	}
}

func TestNewKindAndSiteStrings(t *testing.T) {
	if SlowDown.String() != "slow-down" || Jitter.String() != "jitter" {
		t.Fatalf("kind strings = %q, %q", SlowDown.String(), Jitter.String())
	}
	if SitePCIe.String() != "pcie" {
		t.Fatalf("SitePCIe.String() = %q", SitePCIe.String())
	}
}
