package faults

import (
	"errors"
	"testing"

	"hamoffload/internal/simtime"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.TransferError(0, SitePrivDMA, 1); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if off := in.Corrupt(0, SiteUserDMA, 1, 4096); off != -1 {
		t.Fatalf("nil injector corrupted at %d", off)
	}
	if d := in.StallDelay(0, 1); d != 0 {
		t.Fatalf("nil injector stalled %v", d)
	}
	if in.CrashNow(0, 1) || in.ConnReset(1) {
		t.Fatal("nil injector crashed/reset")
	}
	if err := in.LinkError(0, 1); err != nil {
		t.Fatalf("nil injector link error: %v", err)
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector counted injections")
	}
	if New(nil) != nil {
		t.Fatal("New(nil) must return a nil injector")
	}
}

func TestOpScheduledRule(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: DMAError, Site: SitePrivDMA, Node: 1, AfterOp: 2, Count: 2},
	}})
	var errs []int
	for op := 0; op < 6; op++ {
		if err := in.TransferError(0, SitePrivDMA, 1); err != nil {
			errs = append(errs, op)
			var fe *Error
			if !errors.As(err, &fe) || !fe.Transient() {
				t.Fatalf("op %d: want transient *Error, got %v", op, err)
			}
		}
	}
	if len(errs) != 2 || errs[0] != 2 || errs[1] != 3 {
		t.Fatalf("fired at %v, want [2 3]", errs)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", in.Injected())
	}
	// Other sites and nodes share nothing with the matched counter.
	if err := in.TransferError(0, SiteUserDMA, 1); err != nil {
		t.Fatalf("unmatched site fired: %v", err)
	}
	if err := in.TransferError(0, SitePrivDMA, 2); err != nil {
		t.Fatalf("unmatched node fired: %v", err)
	}
}

func TestEveryStride(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: DMAError, Site: SiteConn, Node: AnyNode, AfterOp: 1, Count: 3, Every: 2},
	}})
	var fired []int
	for op := 0; op < 10; op++ {
		if in.TransferError(0, SiteConn, 0) != nil {
			fired = append(fired, op)
		}
	}
	want := []int{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestTimeWindowRules(t *testing.T) {
	us := simtime.Microsecond
	in := New(&Plan{Rules: []Rule{
		{Kind: Stall, Node: 0, From: simtime.Time(10 * us), Until: simtime.Time(20 * us)},
		{Kind: LinkDown, Node: 1, From: simtime.Time(5 * us), Until: simtime.Time(6 * us)},
	}})
	if d := in.StallDelay(simtime.Time(9*us), 0); d != 0 {
		t.Fatalf("stall before window: %v", d)
	}
	if d := in.StallDelay(simtime.Time(12*us), 0); d != 8*us {
		t.Fatalf("stall = %v, want %v", d, 8*us)
	}
	if d := in.StallDelay(simtime.Time(20*us), 0); d != 0 {
		t.Fatalf("stall at window end: %v", d)
	}
	if err := in.LinkError(simtime.Time(5*us), 1); err == nil {
		t.Fatal("link up inside down window")
	}
	if err := in.LinkError(simtime.Time(6*us), 1); err != nil {
		t.Fatalf("link down after window: %v", err)
	}
	// Wall-clock callers pass now = 0: window rules never fire.
	if d := in.StallDelay(0, 0); d != 0 {
		t.Fatalf("window rule fired at time 0: %v", d)
	}
}

func TestProbabilisticStreamIsDeterministic(t *testing.T) {
	run := func() []int {
		in := New(&Plan{Seed: 42, Rules: []Rule{
			{Kind: DMAError, Site: SiteUserDMA, Node: AnyNode, Rate: 0.3},
		}})
		var fired []int
		for op := 0; op < 200; op++ {
			if in.TransferError(0, SiteUserDMA, 3) != nil {
				fired = append(fired, op)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("rate 0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs disagree at fire %d: op %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed draws a different stream.
	in2 := New(&Plan{Seed: 43, Rules: []Rule{
		{Kind: DMAError, Site: SiteUserDMA, Node: AnyNode, Rate: 0.3},
	}})
	var c []int
	for op := 0; op < 200; op++ {
		if in2.TransferError(0, SiteUserDMA, 3) != nil {
			c = append(c, op)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical streams")
	}
}

func TestCorruptSkipsFlagWords(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: BitFlip, Site: SitePrivDMA, Node: AnyNode, AfterOp: 0, Count: 100},
	}})
	if off := in.Corrupt(0, SitePrivDMA, 0, 8); off != -1 {
		t.Fatalf("8-byte transfer corrupted at %d", off)
	}
	off := in.Corrupt(0, SitePrivDMA, 0, 100)
	if off < 0 || off >= 100 {
		t.Fatalf("corrupt offset %d out of range", off)
	}
}

func TestCrashAndReset(t *testing.T) {
	in := New(&Plan{Rules: []Rule{
		{Kind: Crash, Node: 1, AfterOp: 1},
		{Kind: ConnReset, Node: 2, AfterOp: 0},
	}})
	if in.CrashNow(0, 1) {
		t.Fatal("crashed before AfterOp")
	}
	if !in.CrashNow(0, 1) {
		t.Fatal("no crash at AfterOp")
	}
	if in.CrashNow(0, 1) {
		t.Fatal("crash rule fired twice")
	}
	if !in.ConnReset(2) {
		t.Fatal("no reset at op 0")
	}
	if in.ConnReset(3) {
		t.Fatal("reset on unmatched node")
	}
}
