// Package ham implements Heterogeneous Active Messages: typed messages that
// can be transferred and executed between the heterogeneous binaries of the
// same program (paper §I-A, §III-E). The C++ original generates message
// types and handlers through template meta-programming and translates
// handler addresses between binaries via typeid-name tables; this Go port
// keeps the same architecture — a per-binary handler table with differing
// local addresses, a lexicographically sorted name table yielding globally
// valid handler keys, and O(1) translation in both directions — with Go
// generics playing the role of the templates.
package ham

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder serialises message payloads. All values are little-endian; the
// x86-64 VH and the VE ABI share endianness, which is what makes the format
// exchangeable between the heterogeneous binaries.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
//
// EncodeRequest deliberately takes a fresh encoder per request rather than a
// pooled one: the wire it produces is handed to Backend.Call, which may park
// the proc before copying, so a shared scratch could be clobbered by another
// host proc mid-call.
func NewEncoder() *Encoder { return &Encoder{} } //lint:allow hotalloc fresh buffer per request: Call may park before copying the wire

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current payload size.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutU8 appends one byte.
func (e *Encoder) PutU8(v uint8) { e.buf = append(e.buf, v) } //lint:allow hotalloc amortized growth of the encoder buffer, reused via Reset

// PutU32 appends a 32-bit word.
func (e *Encoder) PutU32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// PutU64 appends a 64-bit word.
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutI64 appends a signed 64-bit word.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutF64 appends a float64.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutF32 appends a float32.
func (e *Encoder) PutF32(v float32) { e.PutU32(math.Float32bits(v)) }

// PutBool appends a bool as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutF64s appends a length-prefixed []float64.
func (e *Encoder) PutF64s(v []float64) {
	e.PutU32(uint32(len(v)))
	for _, x := range v {
		e.PutF64(x)
	}
}

// PutI64s appends a length-prefixed []int64.
func (e *Encoder) PutI64s(v []int64) {
	e.PutU32(uint32(len(v)))
	for _, x := range v {
		e.PutI64(x)
	}
}

// Decoder deserialises message payloads. Errors are sticky: after the first
// underrun every accessor returns zero values and Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for decoding. The decoder aliases buf — it
// shares whatever validity window the payload has.
//
//ham:borrowed buf return
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset re-targets the decoder at a new payload and clears any sticky error,
// so one decoder can be reused across sequential messages without
// reallocating. The decoder is itself scratch with the same validity window
// as buf, which is why the retaining store below is sanctioned.
//
//ham:borrowed buf
func (d *Decoder) Reset(buf []byte) { d.buf, d.off, d.err = buf, 0, nil } //lint:allow borrowck the decoder is scratch sharing buf's validity window; it never outlives the message

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = underrunError(n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// underrunError renders the sticky decode failure. It is split out of take
// so the hot decode path only pays for the formatting when a message is
// actually truncated.
//
//hot:cold
func underrunError(need, off, total int) error {
	return fmt.Errorf("ham: decode underrun: need %d bytes at offset %d of %d", need, off, total)
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a 32-bit word.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a 64-bit word.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit word.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads a float32.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice (copied).
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.F64())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.I64())
		if d.err != nil {
			return nil
		}
	}
	return out
}
