package ham

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.PutU8(7)
	e.PutU32(1 << 20)
	e.PutU64(1 << 40)
	e.PutI64(-42)
	e.PutF64(3.14159)
	e.PutF32(2.5)
	e.PutBool(true)
	e.PutBool(false)
	e.PutString("heterogeneous")
	e.PutBytes([]byte{1, 2, 3})
	e.PutF64s([]float64{1.5, -2.5})
	e.PutI64s([]int64{-1, 0, 1})

	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || d.U32() != 1<<20 || d.U64() != 1<<40 || d.I64() != -42 {
		t.Error("integer round trip failed")
	}
	if d.F64() != 3.14159 || d.F32() != 2.5 {
		t.Error("float round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool round trip failed")
	}
	if d.String() != "heterogeneous" {
		t.Error("string round trip failed")
	}
	if !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) {
		t.Error("bytes round trip failed")
	}
	f := d.F64s()
	if len(f) != 2 || f[0] != 1.5 || f[1] != -2.5 {
		t.Error("[]float64 round trip failed")
	}
	i := d.I64s()
	if len(i) != 3 || i[0] != -1 || i[2] != 1 {
		t.Error("[]int64 round trip failed")
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // underrun
	if d.Err() == nil {
		t.Fatal("underrun not detected")
	}
	if d.U32() != 0 || d.String() != "" || d.Bytes() != nil {
		t.Error("post-error reads should return zero values")
	}
	if d.F64s() != nil || d.I64s() != nil {
		t.Error("post-error slice reads should return nil")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.PutU64(1)
	if e.Len() != 8 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, s string, bs []byte) bool {
		e := NewEncoder()
		e.PutU64(a)
		e.PutI64(b)
		e.PutF64(c)
		e.PutString(s)
		e.PutBytes(bs)
		d := NewDecoder(e.Bytes())
		ga, gb, gc, gs, gbs := d.U64(), d.I64(), d.F64(), d.String(), d.Bytes()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns via encode.
		e2 := NewEncoder()
		e2.PutF64(gc)
		e3 := NewEncoder()
		e3.PutF64(c)
		return ga == a && gb == b && bytes.Equal(e2.Bytes(), e3.Bytes()) &&
			gs == s && (len(bs) == 0 && len(gbs) == 0 || bytes.Equal(gbs, bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// registerN registers n uniquely named no-op handlers under prefix.
func registerN(prefix string, n int) []string {
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s.%03d", prefix, i)
		RegisterHandler(name, func(env any, dec *Decoder, enc *Encoder) error {
			return nil
		})
		names = append(names, name)
	}
	return names
}

func TestBinariesAgreeOnKeys(t *testing.T) {
	names := registerN("test.agree", 20)
	host := NewBinary("x86_64-host")
	ve := NewBinary("aurora-ve")
	for _, n := range names {
		hk, err := host.KeyOf(n)
		if err != nil {
			t.Fatalf("host KeyOf(%s): %v", n, err)
		}
		vk, err := ve.KeyOf(n)
		if err != nil {
			t.Fatalf("ve KeyOf(%s): %v", n, err)
		}
		if hk != vk {
			t.Fatalf("keys disagree for %s: %d vs %d", n, hk, vk)
		}
		// But the local addresses differ, as between real binaries.
		ha, _ := host.AddrOf(hk)
		va, _ := ve.AddrOf(vk)
		if ha == va {
			t.Errorf("addresses coincide for %s", n)
		}
	}
	if host.Count() != ve.Count() {
		t.Fatal("binaries have different message counts")
	}
}

func TestAddressKeyTranslationRoundTrip(t *testing.T) {
	registerN("test.xlate", 8)
	b := NewBinary("arch-a")
	for k := Key(0); int(k) < b.Count(); k++ {
		addr, err := b.AddrOf(k)
		if err != nil {
			t.Fatal(err)
		}
		back, err := b.KeyOfAddr(addr)
		if err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("key %d -> addr %#x -> key %d", k, addr, back)
		}
	}
	if _, err := b.KeyOfAddr(0xdeadbeef); err == nil {
		t.Error("KeyOfAddr of non-handler should fail")
	}
	if _, err := b.AddrOf(Key(1 << 30)); err == nil {
		t.Error("AddrOf of out-of-range key should fail")
	}
	if _, err := b.KeyOf("no.such.message"); err == nil {
		t.Error("KeyOf of unknown name should fail")
	}
}

func TestDispatchCrossBinary(t *testing.T) {
	RegisterHandler("test.dispatch.add", func(env any, dec *Decoder, enc *Encoder) error {
		a, b := dec.I64(), dec.I64()
		if err := dec.Err(); err != nil {
			return err
		}
		enc.PutI64(a + b)
		return nil
	})
	sender := NewBinary("x86_64")
	receiver := NewBinary("aurora")

	msg, err := sender.EncodeRequest("test.dispatch.add", func(e *Encoder) {
		e.PutI64(40)
		e.PutI64(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := receiver.Dispatch(nil, msg)
	dec, err := DecodeResponse(resp)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if got := dec.I64(); got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
}

func TestDispatchErrors(t *testing.T) {
	RegisterHandler("test.dispatch.fail", func(env any, dec *Decoder, enc *Encoder) error {
		return fmt.Errorf("kernel exploded")
	})
	b := NewBinary("arch")
	msg, err := b.EncodeRequest("test.dispatch.fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(b.Dispatch(nil, msg)); err == nil ||
		!strings.Contains(err.Error(), "kernel exploded") {
		t.Errorf("handler error not propagated: %v", err)
	}

	// Unknown key.
	e := NewEncoder()
	e.PutU32(1 << 30)
	if _, err := DecodeResponse(b.Dispatch(nil, e.Bytes())); err == nil {
		t.Error("dispatch of unknown key should fail")
	}

	// Truncated message.
	if _, err := DecodeResponse(b.Dispatch(nil, []byte{1})); err == nil {
		t.Error("dispatch of truncated message should fail")
	}

	// Handler payload underrun.
	RegisterHandler("test.dispatch.underrun", func(env any, dec *Decoder, enc *Encoder) error {
		dec.U64()
		return nil
	})
	b2 := NewBinary("arch2")
	msg2, _ := b2.EncodeRequest("test.dispatch.underrun", nil)
	if _, err := DecodeResponse(b2.Dispatch(nil, msg2)); err == nil {
		t.Error("payload underrun should fail the dispatch")
	}
}

func TestDecodeResponseRejectsGarbage(t *testing.T) {
	if _, err := DecodeResponse([]byte{99}); err == nil {
		t.Error("unknown status accepted")
	}
	if _, err := DecodeResponse([]byte{statusFail, 1, 2}); err == nil {
		t.Error("malformed failure accepted")
	}
}

func TestEnvReachesHandler(t *testing.T) {
	type myEnv struct{ hit bool }
	RegisterHandler("test.env.probe", func(env any, dec *Decoder, enc *Encoder) error {
		env.(*myEnv).hit = true
		return nil
	})
	b := NewBinary("arch")
	env := &myEnv{}
	msg, _ := b.EncodeRequest("test.env.probe", nil)
	if _, err := DecodeResponse(b.Dispatch(env, msg)); err != nil {
		t.Fatal(err)
	}
	if !env.hit {
		t.Error("env did not reach the handler")
	}
}

// Property: for any set of registered names, two binaries instantiated from
// the same program agree on all keys, and sorting is total (keys cover
// 0..n-1 exactly once).
func TestKeyAssignmentProperty(t *testing.T) {
	f := func(raw []string) bool {
		// Derive unique, non-empty names.
		seen := map[string]bool{}
		var names []string
		for i, r := range raw {
			n := fmt.Sprintf("prop.%d.%s", i, r)
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		for _, n := range names {
			RegisterHandler(n, func(env any, dec *Decoder, enc *Encoder) error { return nil })
		}
		a, b := NewBinary("aa"), NewBinary("bb")
		used := map[Key]bool{}
		for _, n := range names {
			ka, err1 := a.KeyOf(n)
			kb, err2 := b.KeyOf(n)
			if err1 != nil || err2 != nil || ka != kb {
				return false
			}
			used[ka] = true
		}
		return a.Count() == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterHandlerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty name accepted")
		}
	}()
	RegisterHandler("", nil)
}

func TestRegisteredCountAndNameOf(t *testing.T) {
	before := RegisteredCount()
	RegisterHandler("test.count.one", func(env any, dec *Decoder, enc *Encoder) error { return nil })
	if RegisteredCount() != before+1 {
		t.Errorf("RegisteredCount did not advance")
	}
	// Re-registration replaces, not duplicates.
	RegisterHandler("test.count.one", func(env any, dec *Decoder, enc *Encoder) error { return nil })
	if RegisteredCount() != before+1 {
		t.Errorf("re-registration changed the count")
	}
	b := NewBinary("count-arch")
	k, err := b.KeyOf("test.count.one")
	if err != nil {
		t.Fatal(err)
	}
	name, err := b.NameOf(k)
	if err != nil || name != "test.count.one" {
		t.Errorf("NameOf = %q, %v", name, err)
	}
	if _, err := b.NameOf(Key(1 << 30)); err == nil {
		t.Error("NameOf out of range accepted")
	}
}

func TestFingerprintStableAcrossArch(t *testing.T) {
	registerN("test.fp", 5)
	a, b := NewBinary("arch-x"), NewBinary("arch-y")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must depend on the program, not the architecture")
	}
	RegisterHandler("test.fp.extra", func(env any, dec *Decoder, enc *Encoder) error { return nil })
	c := NewBinary("arch-z")
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("fingerprint must change when the program changes")
	}
}

func TestEncodeFailureDecodes(t *testing.T) {
	resp := EncodeFailure("unit failure")
	_, err := DecodeResponse(resp)
	if err == nil || !strings.Contains(err.Error(), "unit failure") {
		t.Errorf("EncodeFailure round trip = %v", err)
	}
}
