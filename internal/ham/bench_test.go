package ham

import (
	"fmt"
	"testing"
)

// BenchmarkEncodeMessage measures building a typical offload message: key,
// two buffer pointers (3 words each) and a length.
func BenchmarkEncodeMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.PutU32(17)
		for j := 0; j < 2; j++ {
			e.PutI64(1)
			e.PutU64(0x6000_0000_0000)
			e.PutI64(1024)
		}
		e.PutI64(1024)
		_ = e.Bytes()
	}
}

// BenchmarkDecodeMessage measures the matching decode path.
func BenchmarkDecodeMessage(b *testing.B) {
	e := NewEncoder()
	e.PutU32(17)
	for j := 0; j < 2; j++ {
		e.PutI64(1)
		e.PutU64(0x6000_0000_0000)
		e.PutI64(1024)
	}
	e.PutI64(1024)
	msg := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(msg)
		_ = d.U32()
		for j := 0; j < 2; j++ {
			_ = d.I64()
			_ = d.U64()
			_ = d.I64()
		}
		_ = d.I64()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// BenchmarkDispatch measures the full receive-side path of Fig. 6: key
// extraction, key→address translation, handler call, response framing.
func BenchmarkDispatch(b *testing.B) {
	RegisterHandler("bench.dispatch", func(env any, dec *Decoder, enc *Encoder) error {
		a := dec.I64()
		enc.PutI64(a + 1)
		return nil
	})
	bin := NewBinary("bench-arch")
	msg, err := bin.EncodeRequest("bench.dispatch", func(e *Encoder) { e.PutI64(41) })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := bin.Dispatch(nil, msg)
		if resp[0] != statusOK {
			b.Fatal("dispatch failed")
		}
	}
}

// BenchmarkKeyTranslation measures the O(1) address↔key tables at realistic
// registry sizes.
func BenchmarkKeyTranslation(b *testing.B) {
	for i := 0; i < 200; i++ {
		RegisterHandler(fmt.Sprintf("bench.xlate.%03d", i),
			func(env any, dec *Decoder, enc *Encoder) error { return nil })
	}
	bin := NewBinary("xlate-arch")
	addr, err := bin.AddrOf(Key(bin.Count() / 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := bin.KeyOfAddr(addr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bin.AddrOf(k); err != nil {
			b.Fatal(err)
		}
	}
}
