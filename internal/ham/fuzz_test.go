package ham

import (
	"bytes"
	"testing"
)

// FuzzDispatch feeds arbitrary bytes into a binary's dispatcher: whatever a
// (broken or malicious) peer sends, dispatch must return a well-formed
// response and never panic — the receive path turns "typeless bytes back
// into the typesafe world" (§III-E) and must do so defensively.
func FuzzDispatch(f *testing.F) {
	RegisterHandler("fuzz.sink", func(env any, dec *Decoder, enc *Encoder) error {
		// A handler that reads a realistic argument mix.
		_ = dec.I64()
		_ = dec.String()
		_ = dec.F64s()
		if err := dec.Err(); err != nil {
			return err
		}
		enc.PutI64(1)
		return nil
	})
	bin := NewBinary("fuzz-arch")
	good, err := bin.EncodeRequest("fuzz.sink", func(e *Encoder) {
		e.PutI64(7)
		e.PutString("x")
		e.PutF64s([]float64{1, 2})
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(good[:3])
	f.Add(append(append([]byte{}, good...), 0xcc, 0xdd))

	f.Fuzz(func(t *testing.T, msg []byte) {
		resp := bin.Dispatch(nil, msg)
		if len(resp) == 0 {
			t.Fatal("empty response")
		}
		// The response itself must decode as a valid response frame.
		if dec, err := DecodeResponse(resp); err == nil {
			_ = dec.I64()
		}
	})
}

// FuzzDecoder checks that every accessor tolerates arbitrary input without
// panicking and that the sticky error model holds: once Err() is non-nil it
// stays non-nil.
func FuzzDecoder(f *testing.F) {
	enc := NewEncoder()
	enc.PutU64(1)
	enc.PutString("seed")
	enc.PutBytes([]byte{1, 2, 3})
	f.Add(enc.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.U8()
		_ = d.U32()
		_ = d.U64()
		_ = d.I64()
		_ = d.F64()
		_ = d.F32()
		_ = d.Bool()
		_ = d.String()
		_ = d.Bytes()
		_ = d.F64s()
		_ = d.I64s()
		firstErr := d.Err()
		_ = d.U64()
		if firstErr != nil && d.Err() == nil {
			t.Fatal("sticky error cleared")
		}
		if d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
