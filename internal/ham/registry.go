package ham

import (
	"fmt"
	"sort"
	"sync"
)

// Handler executes one active-message type: it decodes the message payload
// from dec, runs the action against env (the receiving runtime), and encodes
// the result into enc. env is declared as any to keep ham independent of the
// runtime that hosts it; the runtime passes itself.
type Handler func(env any, dec *Decoder, enc *Encoder) error

// Key is a globally valid handler key: the index of the message type's name
// in the lexicographically sorted name table, identical across all binaries
// built from the same program (paper §III-E, Fig. 6).
type Key uint32

// program is the process-wide registration list — the analog of the message
// types a C++ HAM build instantiates. Both the "host binary" and the "target
// binary" of a simulated heterogeneous application are derived from it.
var program = struct {
	sync.Mutex
	handlers map[string]Handler
}{handlers: make(map[string]Handler)}

// RegisterHandler adds (or replaces) the handler for a message type name.
// In the C++ original this happens implicitly through template instantiation
// during static initialisation; here it is typically called from init
// functions or the generic function-registration helpers.
func RegisterHandler(name string, h Handler) {
	if name == "" {
		panic("ham: RegisterHandler with empty name")
	}
	if h == nil {
		panic("ham: RegisterHandler with nil handler for " + name)
	}
	program.Lock()
	defer program.Unlock()
	program.handlers[name] = h
}

// RegisteredCount returns the number of registered message types.
func RegisteredCount() int {
	program.Lock()
	defer program.Unlock()
	return len(program.handlers)
}

// Binary is one process's instantiation of the program's message handlers —
// the moral equivalent of one compiled binary. Local handler addresses
// differ between binaries (here: synthesised deterministically from the
// architecture name), while the sorted name table yields matching keys, so
// a key produced on one binary dispatches to the right handler on another.
type Binary struct {
	arch    string
	names   []string       // sorted; index == Key
	addrs   []uint64       // Key -> local handler "code address"
	byName  map[string]Key // name -> Key
	byAddr  map[uint64]Key // local address -> Key (the sender-side table)
	handler []Handler      // Key -> handler

	// Dispatch scratch: one codec pair reused across sequential Dispatch
	// calls, so steady-state message execution does not allocate. The busy
	// flag hands re-entrant dispatches (a handler dispatching a nested
	// message while parked mid-call) fresh codecs instead. Consequence for
	// callers: the response returned by Dispatch aliases the scratch buffer
	// and is only valid until the next Dispatch on this Binary.
	dispDec Decoder
	dispEnc Encoder
	busy    bool
}

// NewBinary instantiates the current program for an architecture. Binaries
// created after further registrations will disagree on keys, just as
// differently built C++ binaries would — create all binaries of one
// application after all registrations, as the runtime setup does.
func NewBinary(arch string) *Binary {
	program.Lock()
	defer program.Unlock()
	names := make([]string, 0, len(program.handlers))
	for n := range program.handlers {
		names = append(names, n)
	}
	// Lexicographic sort of the type names: the same order on every binary
	// without any communication (§III-E).
	sort.Strings(names)
	b := &Binary{
		arch:    arch,
		names:   names,
		addrs:   make([]uint64, len(names)),
		byName:  make(map[string]Key, len(names)),
		byAddr:  make(map[uint64]Key, len(names)),
		handler: make([]Handler, len(names)),
	}
	for i, n := range names {
		k := Key(i)
		// Synthesise a distinct per-binary code address: a hash of the
		// architecture and name. Real binaries get whatever the linker
		// chose; all that matters is that addresses differ across binaries
		// while keys agree.
		addr := fakeAddress(arch, n)
		b.addrs[i] = addr
		b.byName[n] = k
		b.byAddr[addr] = k
		b.handler[i] = program.handlers[n]
	}
	return b
}

// fakeAddress derives a deterministic 64-bit "code address" from the
// architecture and symbol name (FNV-1a).
func fakeAddress(arch, name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, s := range []string{arch, "::", name} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	return h | 1 // never zero
}

// Arch returns the architecture label of the binary.
func (b *Binary) Arch() string { return b.arch }

// Fingerprint digests the sorted message-type table. Two binaries agree on
// every handler key if and only if their fingerprints match, so runtimes can
// cheaply verify at startup that host and target were "built" from the same
// program — the failure mode the C++ original leaves to matching ABIs and
// build discipline (§III-E).
func (b *Binary) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, n := range b.names {
		for i := 0; i < len(n); i++ {
			h ^= uint64(n[i])
			h *= prime
		}
		h ^= 0x1f // name separator
		h *= prime
	}
	return h
}

// Count returns the number of message types in the binary.
func (b *Binary) Count() int { return len(b.names) }

// KeyOf returns the globally valid key for a message type name.
func (b *Binary) KeyOf(name string) (Key, error) {
	k, ok := b.byName[name]
	if !ok {
		return 0, unknownTypeError(name, b.arch)
	}
	return k, nil
}

// NameOf returns the message type name for a key.
func (b *Binary) NameOf(k Key) (string, error) {
	if int(k) >= len(b.names) {
		return "", keyRangeError(k, b.arch)
	}
	return b.names[k], nil
}

// AddrOf translates a key into this binary's local handler address — the
// O(1) receive-side translation of Fig. 6.
func (b *Binary) AddrOf(k Key) (uint64, error) {
	if int(k) >= len(b.addrs) {
		return 0, keyRangeError(k, b.arch)
	}
	return b.addrs[k], nil
}

// KeyOfAddr translates a local handler address into the globally valid key —
// the send-side translation of Fig. 6.
func (b *Binary) KeyOfAddr(addr uint64) (Key, error) {
	k, ok := b.byAddr[addr]
	if !ok {
		return 0, unknownAddrError(addr, b.arch)
	}
	return k, nil
}

// Translation-failure errors only fire on unknown handlers — programming
// errors, not traffic — so their formatting stays off the hot path.

//hot:cold
func unknownTypeError(name, arch string) error {
	return fmt.Errorf("ham: message type %q not in binary %s", name, arch)
}

//hot:cold
func keyRangeError(k Key, arch string) error {
	return fmt.Errorf("ham: key %d out of range in binary %s", k, arch)
}

//hot:cold
func unknownAddrError(addr uint64, arch string) error {
	return fmt.Errorf("ham: address %#x is not a message handler in binary %s", addr, arch)
}

// Dispatch executes the message payload msg (key-prefixed wire format) and
// returns the encoded response. It performs the generic-handler sequence of
// §III-E: extract the key, translate it to the local handler address, call
// the handler, which re-types the payload bytes back into the typed world.
//
// The returned response aliases the binary's scratch buffer: it is valid
// only until the next Dispatch on this Binary, and callers that need it
// longer must copy it.
//
//ham:borrowed msg return
func (b *Binary) Dispatch(env any, msg []byte) []byte {
	if b.busy {
		return b.dispatchFresh(env, msg)
	}
	b.busy = true
	defer b.endDispatch()
	b.dispDec.Reset(msg)
	b.dispEnc.Reset()
	return b.dispatch(env, &b.dispDec, &b.dispEnc)
}

func (b *Binary) endDispatch() { b.busy = false }

// dispatchFresh is the re-entrant fallback: a handler that dispatches a
// nested message while the scratch pair is in use gets fresh codecs.
//
//hot:cold
//ham:borrowed msg return
func (b *Binary) dispatchFresh(env any, msg []byte) []byte {
	return b.dispatch(env, NewDecoder(msg), NewEncoder())
}

func (b *Binary) dispatch(env any, dec *Decoder, enc *Encoder) []byte {
	key := Key(dec.U32())
	if dec.Err() != nil {
		return encodeFailure(enc, fmt.Errorf("ham: truncated message: %v", dec.Err()))
	}
	addr, err := b.AddrOf(key)
	if err != nil {
		return encodeFailure(enc, err)
	}
	k, err := b.KeyOfAddr(addr) // the local call through the handler table
	if err != nil {
		return encodeFailure(enc, err)
	}
	enc.PutU8(statusOK)
	if err := b.handler[k](env, dec, enc); err != nil {
		enc.Reset()
		return encodeFailure(enc, err)
	}
	if err := dec.Err(); err != nil {
		enc.Reset()
		return encodeFailure(enc, err)
	}
	return enc.Bytes()
}

// MessageName peeks the message type name of a key-prefixed wire message
// without dispatching it, for instrumentation labels. Returns "" when the
// message is truncated or the key is unknown.
func (b *Binary) MessageName(msg []byte) string {
	dec := NewDecoder(msg)
	key := Key(dec.U32())
	if dec.Err() != nil {
		return ""
	}
	name, err := b.NameOf(key)
	if err != nil {
		return ""
	}
	return name
}

// Wire format of requests: [u32 key][payload]. Responses: [u8 status]
// followed by either the result payload or an error string.
const (
	statusOK   = 0
	statusFail = 1
)

// EncodeRequest builds the wire form of a message: the globally valid key
// followed by the payload writer's output.
func (b *Binary) EncodeRequest(name string, writePayload func(*Encoder)) ([]byte, error) {
	k, err := b.KeyOf(name)
	if err != nil {
		return nil, err
	}
	enc := NewEncoder()
	enc.PutU32(uint32(k))
	if writePayload != nil {
		writePayload(enc)
	}
	return enc.Bytes(), nil
}

func encodeFailure(enc *Encoder, err error) []byte {
	enc.PutU8(statusFail)
	enc.PutString(err.Error())
	return enc.Bytes()
}

// EncodeFailure builds a failure response outside a handler — used by
// communication backends that must substitute a protocol-level error (e.g.
// a result too large for the transport) for a handler's response.
func EncodeFailure(msg string) []byte {
	enc := NewEncoder()
	enc.PutU8(statusFail)
	enc.PutString(msg)
	return enc.Bytes()
}

// DecodeResponse splits a response into its payload decoder or the remote
// error it carries.
func DecodeResponse(resp []byte) (*Decoder, error) {
	return DecodeResponseInto(NewDecoder(resp), resp)
}

// DecodeResponseInto is DecodeResponse over a caller-owned decoder, so a
// runtime settling many futures can amortize the decoder allocation with one
// reusable scratch. On success the returned decoder is d itself, re-targeted
// at the response payload — it borrows resp for as long as resp is valid.
//
//ham:borrowed resp
func DecodeResponseInto(d *Decoder, resp []byte) (*Decoder, error) {
	d.Reset(resp)
	switch st := d.U8(); st {
	case statusOK:
		return d, nil
	case statusFail:
		return nil, remoteFailure(d)
	default:
		return nil, unknownStatusError(st)
	}
}

// remoteFailure renders the error string a failure response carries; only
// failed offloads pay for the formatting.
//
//hot:cold
func remoteFailure(d *Decoder) error {
	msg := d.String()
	if err := d.Err(); err != nil {
		return fmt.Errorf("ham: malformed failure response: %v", err)
	}
	return fmt.Errorf("ham: remote execution failed: %s", msg)
}

//hot:cold
func unknownStatusError(st uint8) error {
	return fmt.Errorf("ham: unknown response status %d", st)
}
