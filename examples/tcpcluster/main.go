// Tcpcluster: offloading over plain TCP/IP sockets — HAM-Offload's generic
// backend (§I-A), which "focuses on interoperability rather than
// performance" and "enables experiments like offloading over the internet,
// or between host and target combinations where MPI is not possible".
//
// The same binary plays both roles:
//
//	go run ./examples/tcpcluster                   # demo: both roles in-process,
//	                                               # still over a real socket
//	go run ./examples/tcpcluster -listen :9999     # target process
//	go run ./examples/tcpcluster -connect HOST:9999  # host process
//
// The host offloads a Monte-Carlo π estimator and a histogram kernel to the
// target and checks the results.
//
// Because deployment is "build the same application for every node", the
// offloaded functions below exist in both processes automatically — that is
// the HAM deployment model (§III-C).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"hamoffload/internal/backend/tcpb"
	"hamoffload/offload"
)

// monteCarloPi estimates π from n pseudo-random points; the seed travels in
// the message so the result is reproducible wherever it runs.
var monteCarloPi = offload.NewFunc2[float64]("tcpcluster.pi",
	func(c *offload.Ctx, seed, n int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		hits := int64(0)
		for i := int64(0); i < n; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y <= 1 {
				hits++
			}
		}
		return 4 * float64(hits) / float64(n), nil
	})

// histogram builds a 16-bucket histogram of a target-resident buffer.
var histogram = offload.NewFunc1[[]int64]("tcpcluster.histogram",
	func(c *offload.Ctx, buf offload.BufferPtr[float64]) ([]int64, error) {
		v, err := offload.ReadLocal(c, buf, 0, buf.Count)
		if err != nil {
			return nil, err
		}
		h := make([]int64, 16)
		for _, x := range v {
			b := int(x * 16)
			if b > 15 {
				b = 15
			}
			if b < 0 {
				b = 0
			}
			h[b]++
		}
		return h, nil
	})

func runTarget(addr string) {
	t, err := tcpb.Listen(addr, 1, 2, 1<<28)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("target: serving HAM-Offload on", t.Addr())
	rt := offload.NewRuntime(t, "tcp-target-arch")
	if err := rt.Serve(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("target: terminated cleanly after", rt.Executed(), "messages")
}

func runHost(addr string) {
	b, err := tcpb.Dial([]string{addr}, 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	rt := offload.NewRuntime(b, "tcp-host-arch")
	defer func() {
		if err := rt.Finalize(); err != nil {
			log.Fatal(err)
		}
	}()
	target := offload.NodeID(1)

	d, err := rt.Ping(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: connected to %s (%s)\n", d.Name, d.Device)

	// Offload π estimation; wall-clock timing, since this backend is real.
	start := time.Now()
	pi, err := offload.Sync(rt, target, monteCarloPi.Bind(7, 2_000_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: remote Monte-Carlo pi = %.4f (2e6 samples, %v round trip)\n",
		pi, time.Since(start).Round(time.Microsecond))
	if pi < 3.10 || pi > 3.18 {
		log.Fatalf("pi estimate out of range: %v", pi)
	}

	// Put data, offload a histogram over it.
	const n = 100_000
	data := make([]float64, n)
	rng := rand.New(rand.NewSource(99))
	for i := range data {
		data[i] = rng.Float64()
	}
	buf, err := offload.Allocate[float64](rt, target, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := offload.Put(rt, data, buf); err != nil {
		log.Fatal(err)
	}
	hist, err := offload.Sync(rt, target, histogram.Bind(buf))
	if err != nil {
		log.Fatal(err)
	}
	total := int64(0)
	for _, c := range hist {
		total += c
	}
	if total != n {
		log.Fatalf("histogram sums to %d, want %d", total, n)
	}
	fmt.Printf("host: remote histogram over %d put elements: %v\n", n, hist)
	if err := offload.Free(rt, buf); err != nil {
		log.Fatal(err)
	}
}

func main() {
	listen := flag.String("listen", "", "run as target, listening on this address")
	connect := flag.String("connect", "", "run as host, offloading to this address")
	flag.Parse()

	switch {
	case *listen != "" && *connect != "":
		log.Fatal("pick one of -listen or -connect")
	case *listen != "":
		runTarget(*listen)
	case *connect != "":
		runHost(*connect)
	default:
		// Demo mode: both roles in this process, still over a real socket.
		t, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<28)
		if err != nil {
			log.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rt := offload.NewRuntime(t, "tcp-target-arch")
			if err := rt.Serve(); err != nil {
				log.Fatal(err)
			}
		}()
		runHost(t.Addr())
		<-done
		fmt.Println("demo: host and target both exited cleanly")
	}
}
