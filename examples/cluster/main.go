// Cluster: remote offloading across SX-Aurora nodes — the paper's outlook
// implemented (§VI): "As soon as NEC's MPI will support heterogeneous jobs
// ... HAM-Offload applications will also benefit from remote offloading
// capabilities, again without changes in the application code."
//
// Two simulated A300 nodes are connected by InfiniBand. The host program on
// machine 0 offloads the same registered function to its local Vector
// Engines and to machine 1's VEs through a proxy rank — the application code
// is identical for both, only the node id differs. The program compares
// local and remote offload latency and runs a cluster-wide parallel
// reduction across all VEs of both machines.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"hamoffload/machine"
	"hamoffload/offload"
)

const vesPerNode = 4

// partialSum reduces an arithmetic series segment VE-side; the work is
// generated from the arguments so only 16 bytes travel per offload.
var partialSum = offload.NewFunc2[float64]("cluster_example.partial_sum",
	func(c *offload.Ctx, first, count int64) (float64, error) {
		c.ChargeVector(count, 8*count, 8)
		s := 0.0
		for i := int64(0); i < count; i++ {
			s += float64(first + i)
		}
		return s, nil
	})

func main() {
	cl, err := machine.NewCluster(2, machine.Config{VEs: vesPerNode})
	if err != nil {
		log.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		fmt.Printf("cluster: %d nodes (%d VEs on each of 2 machines + host)\n",
			rt.NumNodes(), vesPerNode)
		for n := 1; n < rt.NumNodes(); n++ {
			d := rt.GetNodeDescriptor(offload.NodeID(n))
			fmt.Printf("  node %d: %-8s %s\n", n, d.Name, d.Device)
		}

		// Latency: local VE vs remote VE, same functor.
		measure := func(node offload.NodeID) machine.Duration {
			for i := 0; i < 10; i++ {
				if _, err := offload.Sync(rt, node, partialSum.Bind(0, 1)); err != nil {
					log.Fatal(err)
				}
			}
			start := cl.Now()
			const reps = 100
			for i := 0; i < reps; i++ {
				if _, err := offload.Sync(rt, node, partialSum.Bind(0, 1)); err != nil {
					log.Fatal(err)
				}
			}
			return (cl.Now() - start) / reps
		}
		local := measure(1)               // machine 0, VE 0
		remote := measure(vesPerNode + 1) // machine 1, VE 0
		fmt.Printf("empty-ish offload cost: local VE %v, remote VE %v (adds IB + proxy)\n",
			local, remote)

		// Cluster-wide reduction: split 80M terms across all 8 VEs.
		const total = int64(80_000_000)
		ves := int64(2 * vesPerNode)
		chunk := total / ves
		futs := make([]*offload.Future[float64], 0, ves)
		start := cl.Now()
		for v := int64(0); v < ves; v++ {
			futs = append(futs, offload.Async(rt, offload.NodeID(v+1),
				partialSum.Bind(v*chunk, chunk)))
		}
		sum := 0.0
		for _, f := range futs {
			r, err := f.Get()
			if err != nil {
				return err
			}
			sum += r
		}
		span := cl.Now() - start
		want := float64(total-1) * float64(total) / 2
		if diff := (sum - want) / want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("cluster sum = %v, want %v", sum, want)
		}
		fmt.Printf("cluster-wide reduction of %dM terms across 8 VEs on 2 machines: %v (sum verified)\n",
			total/1_000_000, span)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
