// Overlap: communication/computation overlap with double buffering — the
// property the paper's one-sided protocols are designed for: "the VH can
// write messages via PCIe into the VE memory while the VE is executing a
// previously received active message in parallel — thus enabling overlap of
// communication and computation" (§III-D).
//
// A stream of data chunks is reduced on a Vector Engine in two schedules:
//
//	serial:   put(chunk) → offload(reduce) → wait, one chunk at a time
//	overlap:  two VE buffers; while the VE reduces chunk i, the host already
//	          puts chunk i+1 into the other buffer
//
// Both schedules produce the same total; the overlapped one hides most of
// the transfer time behind the kernel, and the program reports the gain.
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"
	"log"

	"hamoffload/machine"
	"hamoffload/offload"
)

const (
	chunkElems = 1 << 17 // 1 MiB of float64 per chunk
	numChunks  = 24
)

// reduceChunk sums a chunk VE-side. The charge makes the kernel take about
// as long as the 1 MiB transfer, the sweet spot for overlap.
var reduceChunk = offload.NewFunc2[float64]("overlap.reduce_chunk",
	func(c *offload.Ctx, buf offload.BufferPtr[float64], n int64) (float64, error) {
		v, err := offload.ReadLocal(c, buf, 0, n)
		if err != nil {
			return 0, err
		}
		// A compute-heavy pass sized to roughly match the ~200 µs transfer
		// time of one chunk — the balanced case where overlap pays most.
		c.ChargeVector(350*n, 8*n, 1)
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s, nil
	})

func chunk(i int) []float64 {
	data := make([]float64, chunkElems)
	for j := range data {
		data[j] = float64(i + 1)
	}
	return data
}

func wantTotal() float64 {
	total := 0.0
	for i := 0; i < numChunks; i++ {
		total += float64(i+1) * chunkElems
	}
	return total
}

func run(overlapped bool) (machine.Duration, float64, error) {
	m, err := machine.New(machine.Config{VEs: 1})
	if err != nil {
		return 0, 0, err
	}
	var span machine.Duration
	var total float64
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		target := offload.NodeID(1)

		bufs := make([]offload.BufferPtr[float64], 2)
		for i := range bufs {
			if bufs[i], err = offload.Allocate[float64](rt, target, chunkElems); err != nil {
				return err
			}
		}

		start := m.Now()
		if !overlapped {
			for i := 0; i < numChunks; i++ {
				if err := offload.Put(rt, chunk(i), bufs[0]); err != nil {
					return err
				}
				r, err := offload.Sync(rt, target, reduceChunk.Bind(bufs[0], int64(chunkElems)))
				if err != nil {
					return err
				}
				total += r
			}
		} else {
			// Prime the pipeline: chunk 0 into buffer 0.
			if err := offload.Put(rt, chunk(0), bufs[0]); err != nil {
				return err
			}
			var inflight *offload.Future[float64]
			for i := 0; i < numChunks; i++ {
				cur := bufs[i%2]
				nxt := bufs[(i+1)%2]
				inflight = offload.Async(rt, target, reduceChunk.Bind(cur, int64(chunkElems)))
				// While the VE reduces chunk i, transfer chunk i+1.
				if i+1 < numChunks {
					if err := offload.Put(rt, chunk(i+1), nxt); err != nil {
						return err
					}
				}
				r, err := inflight.Get()
				if err != nil {
					return err
				}
				total += r
			}
		}
		span = m.Now() - start
		for i := range bufs {
			if err := offload.Free(rt, bufs[i]); err != nil {
				return err
			}
		}
		return nil
	})
	return span, total, err
}

func main() {
	want := wantTotal()
	serial, totalA, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	overlap, totalB, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	for name, v := range map[string]float64{"serial": totalA, "overlapped": totalB} {
		if d := v - want; d > 1e-3 || d < -1e-3 {
			log.Fatalf("%s total = %v, want %v", name, v, want)
		}
	}
	fmt.Printf("Streaming reduction of %d x %d MiB chunks on one VE (DMA protocol)\n",
		numChunks, chunkElems*8>>20)
	fmt.Printf("  serial schedule      : %v\n", serial)
	fmt.Printf("  double-buffered      : %v\n", overlap)
	fmt.Printf("  overlap hides %.0f%% of the schedule\n",
		(1-float64(overlap)/float64(serial))*100)
}
