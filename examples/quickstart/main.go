// Quickstart: the paper's Fig. 2 example, ported from C++ to Go — compute
// the inner product of two vectors on a Vector Engine.
//
// The program allocates target memory, transfers the inputs with put,
// offloads the inner_prod function asynchronously, overlaps host work with
// the offload, and synchronises on the future. It runs the same application
// code over both of the paper's messaging protocols and reports the offload
// round-trip times, which reproduce the ~70× gap of Fig. 9 at application
// level.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hamoffload/machine"
	"hamoffload/offload"
)

// innerProd is the offloaded function from Fig. 2. Registration at package
// level mirrors the C++ template instantiation: the same "binary" contents
// exist on host and target.
var innerProd = offload.NewFunc3[float64]("quickstart.inner_prod",
	func(c *offload.Ctx, a, b offload.BufferPtr[float64], n int64) (float64, error) {
		av, err := offload.ReadLocal(c, a, 0, n)
		if err != nil {
			return 0, err
		}
		bv, err := offload.ReadLocal(c, b, 0, n)
		if err != nil {
			return 0, err
		}
		// 2 flops and 16 bytes of HBM traffic per element, on all 8 cores.
		c.ChargeVector(2*n, 16*n, 8)
		r := 0.0
		for i := int64(0); i < n; i++ {
			r += av[i] * bv[i]
		}
		return r, nil
	})

func main() {
	const n = 1024

	// Host memory, as in Fig. 2.
	a := make([]float64, n)
	b := make([]float64, n)
	want := 0.0
	for i := range a {
		a[i] = float64(i)
		b[i] = 1.0 / float64(i+1)
		want += a[i] * b[i]
	}

	for _, proto := range []string{"VEO protocol (Fig. 5)", "DMA protocol (Fig. 8)"} {
		m, err := machine.New(machine.Config{VEs: 1})
		if err != nil {
			log.Fatal(err)
		}
		err = m.RunMain(func(p *machine.Proc) error {
			var rt *offload.Runtime
			var cerr error
			if proto[0] == 'V' {
				rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
			} else {
				rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			}
			if cerr != nil {
				return cerr
			}
			defer func() { _ = rt.Finalize() }()

			target := offload.NodeID(1)

			// Target memory.
			aT, err := offload.Allocate[float64](rt, target, n)
			if err != nil {
				return err
			}
			bT, err := offload.Allocate[float64](rt, target, n)
			if err != nil {
				return err
			}

			// Transfer memory.
			if err := offload.Put(rt, a, aT); err != nil {
				return err
			}
			if err := offload.Put(rt, b, bT); err != nil {
				return err
			}

			// Async offload; returns a future<float64>.
			start := m.Now()
			result := offload.Async(rt, target, innerProd.Bind(aT, bT, n))

			// Do something in parallel on the host while the VE computes.
			hostSide := 0.0
			for i := 0; i < n; i++ {
				hostSide += a[i]
			}

			// Sync on the result future.
			c, err := result.Get()
			if err != nil {
				return err
			}
			elapsed := m.Now() - start

			fmt.Printf("%-22s inner product = %.6f (expected %.6f), offload round trip = %v\n",
				proto, c, want, elapsed)
			if diff := c - want; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("wrong result: %v != %v", c, want)
			}

			if err := offload.Free(rt, aT); err != nil {
				return err
			}
			return offload.Free(rt, bT)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}
