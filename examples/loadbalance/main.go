// Loadbalance: dynamic distribution of dense-matrix kernel tasks across the
// host CPU and all eight Vector Engines of the A300-8 — the usage pattern of
// Malý et al.'s domain-decomposition solver, which the paper cites as the
// motivating HAM-Offload application class ("a simple load-balancing
// strategy to efficiently utilise both the host CPU and the available
// coprocessors").
//
// A pool of variable-size matrix-square tasks is distributed greedily: every
// VE holds one outstanding asynchronous offload; whenever a future completes
// (tested without blocking), the VE receives the next task. The host works
// through tasks of its own between polls. A checksum over all results
// verifies that every task ran exactly once, wherever it ran.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hamoffload/machine"
	"hamoffload/offload"
)

const (
	numTasks = 60
	numVEs   = 8
)

// squareChecksum multiplies an m×m matrix with itself and returns the sum of
// the product's entries. The matrix is generated target-side from the seed,
// so only (seed, m) travels in the active message.
var squareChecksum = offload.NewFunc2[float64]("loadbalance.square_checksum",
	func(c *offload.Ctx, seed int64, m int64) (float64, error) {
		c.ChargeVector(2*m*m*m, 8*3*m*m, 8)
		return squareChecksumHost(seed, m), nil
	})

// squareChecksumHost is the same kernel on the host; with HAM-Offload the
// whole application is built for both sides, so sharing the body is natural.
func squareChecksumHost(seed, m int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, m*m)
	for i := range a {
		a[i] = rng.Float64()
	}
	sum := 0.0
	for i := int64(0); i < m; i++ {
		for j := int64(0); j < m; j++ {
			acc := 0.0
			for k := int64(0); k < m; k++ {
				acc += a[i*m+k] * a[k*m+j]
			}
			sum += acc
		}
	}
	return sum
}

type task struct {
	seed int64
	m    int64
}

func makeTasks() []task {
	rng := rand.New(rand.NewSource(42))
	tasks := make([]task, numTasks)
	for i := range tasks {
		// Task sizes chosen so one task clearly exceeds the ~6 µs offload
		// overhead of the DMA protocol: 2·m³ flops at m = 96..160 is
		// 1.8-8.2 MFLOP, i.e. 1-5 µs on a VE and 4-20 µs on the host.
		tasks[i] = task{seed: int64(i + 1), m: int64(96 + rng.Intn(5)*16)} // 96..160
	}
	return tasks
}

// runPool executes the tasks over the given worker nodes (host included when
// useHost), returning the makespan and the checksum total.
func runPool(ves int, useHost bool) (machine.Duration, float64, error) {
	m, err := machine.New(machine.Config{VEs: max(ves, 1)})
	if err != nil {
		return 0, 0, err
	}
	tasks := makeTasks()
	var makespan machine.Duration
	var total float64
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{VEs: max(ves, 1)})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		start := m.Now()
		next := 0
		inflight := make([]*offload.Future[float64], ves)
		pending := 0

		for next < len(tasks) || pending > 0 {
			// Refill and harvest VE futures.
			for v := 0; v < ves; v++ {
				if inflight[v] == nil && next < len(tasks) {
					t := tasks[next]
					next++
					inflight[v] = offload.Async(rt, offload.NodeID(v+1),
						squareChecksum.Bind(t.seed, t.m))
					pending++
				}
				if inflight[v] != nil && inflight[v].Test() {
					r, err := inflight[v].Get()
					if err != nil {
						return err
					}
					total += r
					inflight[v] = nil
					pending--
				}
			}
			// The host takes a task of its own when all VEs are busy.
			if useHost && next < len(tasks) && (ves == 0 || pending == ves) {
				t := tasks[next]
				next++
				rt.Backend().ChargeVector(2*t.m*t.m*t.m, 8*3*t.m*t.m, 6)
				total += squareChecksumHost(t.seed, t.m)
			}
			// When neither refill, harvest, nor host work happened, the
			// Test() polls above have already advanced simulated time by the
			// host poll interval, so this loop converges.
		}
		makespan = m.Now() - start
		return nil
	})
	return makespan, total, err
}

func main() {
	type cfg struct {
		name    string
		ves     int
		useHost bool
	}
	cfgs := []cfg{
		{"host only (6 cores)", 0, true},
		{"1 VE", 1, false},
		{"host + 1 VE", 1, true},
		{"8 VEs", numVEs, false},
		{"host + 8 VEs", numVEs, true},
	}
	var base machine.Duration
	var wantSum float64
	fmt.Printf("Dynamic load balancing of %d dense-matrix tasks (DMA protocol)\n", numTasks)
	for i, c := range cfgs {
		span, sum, err := runPool(c.ves, c.useHost)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base, wantSum = span, sum
		}
		if diff := sum - wantSum; diff > 1e-6 || diff < -1e-6 {
			log.Fatalf("%s: checksum %.6f != %.6f — tasks lost or duplicated", c.name, sum, wantSum)
		}
		fmt.Printf("  %-22s makespan %-10v speedup %.2fx\n",
			c.name, span, float64(base)/float64(span))
	}
	fmt.Println("checksums identical across configurations — every task ran exactly once")
	fmt.Println("note: with 8 VEs the single host thread is better spent dispatching than")
	fmt.Println("computing — host tasks block the dispatch loop, a real scheduling trade-off")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
