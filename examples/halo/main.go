// Halo: domain decomposition across four Vector Engines with halo exchange —
// the multi-accelerator pattern behind the paper's copy primitive (Table II:
// "performs a direct copy between memory on two offload targets; the
// operation is orchestrated by the host").
//
// A 2D Jacobi grid is split row-wise over 4 VEs, each holding its partition
// plus two ghost rows. Every iteration first exchanges boundary rows between
// neighbouring VEs with offload.Copy, then sweeps all partitions in parallel
// with asynchronous offloads. On this platform generation VE-to-VE data has
// no direct path — each Copy stages through the host via the VEO API — and
// the program reports how much of the iteration that exchange costs.
//
// The result is verified against a single-domain host computation.
//
// Run with: go run ./examples/halo
package main

import (
	"fmt"
	"log"
	"math"

	"hamoffload/machine"
	"hamoffload/offload"
)

const (
	numVEs = 4
	rows   = 32 // owned rows per VE
	cols   = 128
	iters  = 10
)

// sweepPartition performs one Jacobi sweep over a partition stored with one
// ghost row above and below (buffer layout (rows+2) x cols). The flags mark
// partitions whose first/last owned row is a global domain boundary, which
// Jacobi leaves fixed.
var sweepPartition = offload.NewFunc4[offload.Unit]("halo.sweep",
	func(c *offload.Ctx, in, out offload.BufferPtr[float64], topBoundary, bottomBoundary int64) (offload.Unit, error) {
		n := int64(rows+2) * cols
		v, err := offload.ReadLocal(c, in, 0, n)
		if err != nil {
			return offload.Unit{}, err
		}
		res := make([]float64, n)
		copy(res, v)
		lo, hi := int64(1), int64(rows)
		if topBoundary != 0 {
			lo++
		}
		if bottomBoundary != 0 {
			hi--
		}
		for i := lo; i <= hi; i++ {
			for j := int64(1); j < cols-1; j++ {
				res[i*cols+j] = 0.25 * (v[(i-1)*cols+j] + v[(i+1)*cols+j] +
					v[i*cols+j-1] + v[i*cols+j+1])
			}
		}
		c.ChargeVector(4*int64(rows)*cols, 40*int64(rows)*cols, 8)
		return offload.Unit{}, offload.WriteLocal(c, out, 0, res)
	})

// reference computes the same iterations on the host over the whole domain.
func reference(grid []float64, steps int) []float64 {
	total := numVEs * rows
	cur := append([]float64(nil), grid...)
	next := append([]float64(nil), grid...)
	for s := 0; s < steps; s++ {
		for i := 1; i < total-1; i++ {
			for j := 1; j < cols-1; j++ {
				next[i*cols+j] = 0.25 * (cur[(i-1)*cols+j] + cur[(i+1)*cols+j] +
					cur[i*cols+j-1] + cur[i*cols+j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}

func initialGrid() []float64 {
	total := numVEs * rows
	g := make([]float64, total*cols)
	for j := 0; j < cols; j++ {
		g[j] = 100 // hot top edge of the global domain
	}
	for i := 0; i < total; i++ {
		g[i*cols] = 50 // warm left edge
	}
	return g
}

func main() {
	m, err := machine.New(machine.Config{VEs: numVEs})
	if err != nil {
		log.Fatal(err)
	}
	grid := initialGrid()
	want := reference(grid, iters)
	got := make([]float64, len(grid))
	var total, exchange machine.Duration

	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		// Per-VE double buffers of (rows+2) x cols.
		part := int64(rows+2) * cols
		bufA := make([]offload.BufferPtr[float64], numVEs)
		bufB := make([]offload.BufferPtr[float64], numVEs)
		for v := 0; v < numVEs; v++ {
			node := offload.NodeID(v + 1)
			if bufA[v], err = offload.Allocate[float64](rt, node, part); err != nil {
				return err
			}
			if bufB[v], err = offload.Allocate[float64](rt, node, part); err != nil {
				return err
			}
			// Scatter the initial partition (owned rows into rows 1..rows).
			slab := make([]float64, part)
			copy(slab[cols:cols+rows*cols], grid[v*rows*cols:(v+1)*rows*cols])
			if err := offload.Put(rt, slab, bufA[v]); err != nil {
				return err
			}
			if err := offload.Put(rt, slab, bufB[v]); err != nil {
				return err
			}
		}

		rowAt := func(b offload.BufferPtr[float64], r int) offload.BufferPtr[float64] {
			off, err := b.Offset(int64(r) * cols)
			if err != nil {
				panic(err)
			}
			off.Count = cols
			return off
		}

		start := m.Now()
		in, out := bufA, bufB
		for s := 0; s < iters; s++ {
			// Halo exchange between neighbouring VEs: last owned row of v
			// becomes the top ghost of v+1 and vice versa. Each Copy is
			// host-orchestrated (no VE-to-VE path on this platform).
			exStart := m.Now()
			for v := 0; v < numVEs-1; v++ {
				if err := offload.Copy(rt, rowAt(in[v], rows), rowAt(in[v+1], 0), cols); err != nil {
					return err
				}
				if err := offload.Copy(rt, rowAt(in[v+1], 1), rowAt(in[v], rows+1), cols); err != nil {
					return err
				}
			}
			exchange += m.Now() - exStart

			// Sweep all partitions in parallel.
			futs := make([]*offload.Future[offload.Unit], numVEs)
			for v := 0; v < numVEs; v++ {
				top, bottom := int64(0), int64(0)
				if v == 0 {
					top = 1
				}
				if v == numVEs-1 {
					bottom = 1
				}
				futs[v] = offload.Async(rt, offload.NodeID(v+1), sweepPartition.Bind(in[v], out[v], top, bottom))
			}
			for _, f := range futs {
				if _, err := f.Get(); err != nil {
					return err
				}
			}
			in, out = out, in
		}
		total = m.Now() - start

		// Gather the owned rows back.
		for v := 0; v < numVEs; v++ {
			slab := make([]float64, part)
			if err := offload.Get(rt, in[v], slab); err != nil {
				return err
			}
			copy(got[v*rows*cols:(v+1)*rows*cols], slab[cols:cols+rows*cols])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-12 {
		log.Fatalf("distributed result diverges from host reference (max err %g)", maxErr)
	}
	fmt.Printf("Jacobi %dx%d split over %d VEs, %d iterations (verified, max err %.1e)\n",
		numVEs*rows, cols, numVEs, iters, maxErr)
	fmt.Printf("  total %v; halo exchange %v (%.0f%% — host-staged VE-to-VE copies dominate)\n",
		total, exchange, 100*float64(exchange)/float64(total))
}
