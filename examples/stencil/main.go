// Stencil: a 2D Jacobi heat-diffusion solver whose sweep kernel is offloaded
// to a Vector Engine — the classic fine-grained offloading workload the
// paper's overhead reduction targets: one offload per iteration, so the
// per-offload cost of the messaging protocol directly multiplies into the
// time to solution ("lower overhead means ... offloads can become more
// fine-grained", §V-B).
//
// The grid is transferred once with put, the sweep runs iters times as an
// offloaded function alternating between two VE-resident buffers, and the
// result returns once with get. The program verifies the offloaded result
// against a host-computed reference, then reports how the two protocols'
// offload overheads amplify at this granularity.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"hamoffload/machine"
	"hamoffload/offload"
)

const (
	gridN = 128 // grid edge length (incl. boundary)
	iters = 50
)

// jacobiStep performs one sweep: out[i,j] = 0.25*(in neighbours), interior
// points only. 4 flops and 5 doubles of traffic per point, vectorised across
// all 8 VE cores.
var jacobiStep = offload.NewFunc3[offload.Unit]("stencil.jacobi_step",
	func(c *offload.Ctx, in, out offload.BufferPtr[float64], n int64) (offload.Unit, error) {
		grid, err := offload.ReadLocal(c, in, 0, n*n)
		if err != nil {
			return offload.Unit{}, err
		}
		next := make([]float64, n*n)
		copy(next, grid) // keep boundary values
		for i := int64(1); i < n-1; i++ {
			for j := int64(1); j < n-1; j++ {
				next[i*n+j] = 0.25 * (grid[(i-1)*n+j] + grid[(i+1)*n+j] +
					grid[i*n+j-1] + grid[i*n+j+1])
			}
		}
		interior := (n - 2) * (n - 2)
		c.ChargeVector(4*interior, 40*interior, 8)
		return offload.Unit{}, offload.WriteLocal(c, out, 0, next)
	})

// reference computes the same sweeps on the host for verification.
func reference(grid []float64, n, steps int) []float64 {
	cur := append([]float64(nil), grid...)
	next := append([]float64(nil), grid...)
	for s := 0; s < steps; s++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				next[i*n+j] = 0.25 * (cur[(i-1)*n+j] + cur[(i+1)*n+j] +
					cur[i*n+j-1] + cur[i*n+j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}

func initialGrid(n int) []float64 {
	g := make([]float64, n*n)
	for j := 0; j < n; j++ {
		g[j] = 100.0 // hot top edge
	}
	return g
}

func main() {
	grid := initialGrid(gridN)
	want := reference(grid, gridN, iters)

	type outcome struct {
		name    string
		total   machine.Duration
		perIter machine.Duration
	}
	var results []outcome

	for _, proto := range []string{"VEO", "DMA"} {
		m, err := machine.New(machine.Config{VEs: 1})
		if err != nil {
			log.Fatal(err)
		}
		got := make([]float64, gridN*gridN)
		var total machine.Duration
		err = m.RunMain(func(p *machine.Proc) error {
			var rt *offload.Runtime
			var cerr error
			if proto == "VEO" {
				rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
			} else {
				rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			}
			if cerr != nil {
				return cerr
			}
			defer func() { _ = rt.Finalize() }()

			target := offload.NodeID(1)
			bufA, err := offload.Allocate[float64](rt, target, gridN*gridN)
			if err != nil {
				return err
			}
			bufB, err := offload.Allocate[float64](rt, target, gridN*gridN)
			if err != nil {
				return err
			}
			if err := offload.Put(rt, grid, bufA); err != nil {
				return err
			}
			// The boundary must exist in both buffers before sweeping.
			if err := offload.Put(rt, grid, bufB); err != nil {
				return err
			}

			start := m.Now()
			in, out := bufA, bufB
			for s := 0; s < iters; s++ {
				if _, err := offload.Sync(rt, target, jacobiStep.Bind(in, out, int64(gridN))); err != nil {
					return err
				}
				in, out = out, in
			}
			total = m.Now() - start

			if err := offload.Get(rt, in, got); err != nil {
				return err
			}
			if err := offload.Free(rt, bufA); err != nil {
				return err
			}
			return offload.Free(rt, bufB)
		})
		if err != nil {
			log.Fatal(err)
		}

		maxErr := 0.0
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 1e-12 {
			log.Fatalf("%s: offloaded stencil diverges from reference (max err %g)", proto, maxErr)
		}
		results = append(results, outcome{
			name:    proto,
			total:   total,
			perIter: total / machine.Duration(iters),
		})
	}

	fmt.Printf("Jacobi %dx%d, %d offloaded sweeps (result verified against host reference)\n",
		gridN, gridN, iters)
	for _, r := range results {
		fmt.Printf("  %-4s protocol: total %-10v per sweep %v\n", r.name, r.total, r.perIter)
	}
	speedup := float64(results[0].total) / float64(results[1].total)
	fmt.Printf("DMA protocol shortens the solve by %.1fx at this offload granularity.\n", speedup)
}
