// CG: a conjugate-gradient solver whose kernels all run on a Vector Engine —
// the workload class of the paper's related work (Hahnfeld et al.'s CG on
// accelerator nodes, and the FETI solvers of Malý et al.). The solver state
// (x, r, p, Ap) lives in VE memory for the whole solve; every iteration
// issues five fine-grained offloads (one matrix-free Laplacian apply, two
// dot products, two AXPYs) and only scalars cross PCIe. At this granularity
// the messaging protocol dominates: the program reports the solve time under
// both protocols and verifies the solution against a host-side solve.
//
// Run with: go run ./examples/cg
package main

import (
	"fmt"
	"log"
	"math"

	"hamoffload/machine"
	"hamoffload/offload"
)

const (
	gridN   = 64 // unknowns per grid edge; n = gridN² unknowns
	maxIter = 300
	tol     = 1e-7 // on the residual norm; the loop tests ||r||^2 > tol^2
)

// applyLaplacian computes out = A·in for the 2D 5-point Laplacian
// (matrix-free SpMV), the paper-cited CG hot loop.
var applyLaplacian = offload.NewFunc3[offload.Unit]("cg.apply_laplacian",
	func(c *offload.Ctx, in, out offload.BufferPtr[float64], n int64) (offload.Unit, error) {
		v, err := offload.ReadLocal(c, in, 0, n*n)
		if err != nil {
			return offload.Unit{}, err
		}
		res := make([]float64, n*n)
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				s := 4 * v[i*n+j]
				if i > 0 {
					s -= v[(i-1)*n+j]
				}
				if i < n-1 {
					s -= v[(i+1)*n+j]
				}
				if j > 0 {
					s -= v[i*n+j-1]
				}
				if j < n-1 {
					s -= v[i*n+j+1]
				}
				res[i*n+j] = s
			}
		}
		c.ChargeVector(6*n*n, 6*8*n*n, 8)
		return offload.Unit{}, offload.WriteLocal(c, out, 0, res)
	})

// dot computes the inner product of two VE-resident vectors.
var dot = offload.NewFunc2[float64]("cg.dot",
	func(c *offload.Ctx, a, b offload.BufferPtr[float64]) (float64, error) {
		av, err := offload.ReadLocal(c, a, 0, a.Count)
		if err != nil {
			return 0, err
		}
		bv, err := offload.ReadLocal(c, b, 0, b.Count)
		if err != nil {
			return 0, err
		}
		c.ChargeVector(2*a.Count, 16*a.Count, 8)
		s := 0.0
		for i := range av {
			s += av[i] * bv[i]
		}
		return s, nil
	})

// axpy computes y ← y + alpha·x on the VE.
var axpy = offload.NewFunc3[offload.Unit]("cg.axpy",
	func(c *offload.Ctx, y, x offload.BufferPtr[float64], alpha float64) (offload.Unit, error) {
		yv, err := offload.ReadLocal(c, y, 0, y.Count)
		if err != nil {
			return offload.Unit{}, err
		}
		xv, err := offload.ReadLocal(c, x, 0, x.Count)
		if err != nil {
			return offload.Unit{}, err
		}
		for i := range yv {
			yv[i] += alpha * xv[i]
		}
		c.ChargeVector(2*y.Count, 24*y.Count, 8)
		return offload.Unit{}, offload.WriteLocal(c, y, 0, yv)
	})

// xpay computes p ← r + beta·p on the VE (the CG direction update).
var xpay = offload.NewFunc3[offload.Unit]("cg.xpay",
	func(c *offload.Ctx, p, r offload.BufferPtr[float64], beta float64) (offload.Unit, error) {
		pv, err := offload.ReadLocal(c, p, 0, p.Count)
		if err != nil {
			return offload.Unit{}, err
		}
		rv, err := offload.ReadLocal(c, r, 0, r.Count)
		if err != nil {
			return offload.Unit{}, err
		}
		for i := range pv {
			pv[i] = rv[i] + beta*pv[i]
		}
		c.ChargeVector(2*p.Count, 24*p.Count, 8)
		return offload.Unit{}, offload.WriteLocal(c, p, 0, pv)
	})

// hostLaplacian is the same operator on the host, for verification.
func hostLaplacian(in, out []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 4 * in[i*n+j]
			if i > 0 {
				s -= in[(i-1)*n+j]
			}
			if i < n-1 {
				s -= in[(i+1)*n+j]
			}
			if j > 0 {
				s -= in[i*n+j-1]
			}
			if j < n-1 {
				s -= in[i*n+j+1]
			}
			out[i*n+j] = s
		}
	}
}

func rhs() []float64 {
	// Three point sources: far from any Laplacian eigenvector, so CG needs a
	// realistic number of iterations.
	b := make([]float64, gridN*gridN)
	b[(gridN/4)*gridN+gridN/4] = 1
	b[(gridN/2)*gridN+2*gridN/3] = -0.5
	b[(3*gridN/4)*gridN+gridN/5] = 0.25
	return b
}

// solve runs CG with all kernels offloaded and returns (solution, iterations,
// solve time).
func solve(useDMA bool) ([]float64, int, machine.Duration, error) {
	m, err := machine.New(machine.Config{VEs: 1})
	if err != nil {
		return nil, 0, 0, err
	}
	x := make([]float64, gridN*gridN)
	iters := 0
	var span machine.Duration
	err = m.RunMain(func(p *machine.Proc) error {
		var rt *offload.Runtime
		var cerr error
		if useDMA {
			rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		} else {
			rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		target := offload.NodeID(1)
		n := int64(gridN * gridN)

		alloc := func() (offload.BufferPtr[float64], error) {
			return offload.Allocate[float64](rt, target, n)
		}
		xB, err := alloc()
		if err != nil {
			return err
		}
		rB, err := alloc()
		if err != nil {
			return err
		}
		pB, err := alloc()
		if err != nil {
			return err
		}
		apB, err := alloc()
		if err != nil {
			return err
		}

		// x = 0; r = p = b.
		b := rhs()
		if err := offload.Put(rt, b, rB); err != nil {
			return err
		}
		if err := offload.Put(rt, b, pB); err != nil {
			return err
		}

		start := m.Now()
		rr, err := offload.Sync(rt, target, dot.Bind(rB, rB))
		if err != nil {
			return err
		}
		for iters = 0; iters < maxIter && rr > tol*tol; iters++ {
			if _, err := offload.Sync(rt, target, applyLaplacian.Bind(pB, apB, int64(gridN))); err != nil {
				return err
			}
			pAp, err := offload.Sync(rt, target, dot.Bind(pB, apB))
			if err != nil {
				return err
			}
			alpha := rr / pAp
			if _, err := offload.Sync(rt, target, axpy.Bind(xB, pB, alpha)); err != nil {
				return err
			}
			if _, err := offload.Sync(rt, target, axpy.Bind(rB, apB, -alpha)); err != nil {
				return err
			}
			rrNew, err := offload.Sync(rt, target, dot.Bind(rB, rB))
			if err != nil {
				return err
			}
			if _, err := offload.Sync(rt, target, xpay.Bind(pB, rB, rrNew/rr)); err != nil {
				return err
			}
			rr = rrNew
		}
		span = m.Now() - start
		return offload.Get(rt, xB, x)
	})
	return x, iters, span, err
}

func main() {
	xVEO, itVEO, tVEO, err := solve(false)
	if err != nil {
		log.Fatal(err)
	}
	xDMA, itDMA, tDMA, err := solve(true)
	if err != nil {
		log.Fatal(err)
	}
	if itVEO != itDMA {
		log.Fatalf("iteration counts differ: %d vs %d", itVEO, itDMA)
	}
	for i := range xVEO {
		if xVEO[i] != xDMA[i] {
			log.Fatalf("solutions differ at %d", i)
		}
	}
	// Verify: residual of the returned solution against the host operator.
	b := rhs()
	ax := make([]float64, gridN*gridN)
	hostLaplacian(xDMA, ax, gridN)
	res := 0.0
	for i := range b {
		d := ax[i] - b[i]
		res += d * d
	}
	res = math.Sqrt(res)
	if res > 1e-4 {
		log.Fatalf("residual %g too large", res)
	}
	offloadsPerIter := 6
	fmt.Printf("CG on a %dx%d Laplacian: converged in %d iterations (residual %.2e, verified on host)\n",
		gridN, gridN, itDMA, res)
	fmt.Printf("  %d offloads/iteration; vectors stay VE-resident, only scalars cross PCIe\n", offloadsPerIter)
	fmt.Printf("  VEO protocol solve: %v\n", tVEO)
	fmt.Printf("  DMA protocol solve: %v  (%.1fx faster at this offload granularity)\n",
		tDMA, float64(tVEO)/float64(tDMA))
}
