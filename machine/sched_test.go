package machine_test

import (
	"bytes"
	"fmt"
	"testing"

	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
	"hamoffload/sched"
)

// This file pins the determinism of the cluster-wide scheduler: a seeded
// Map workload sharded over every VE of a 2x2 cluster, with message
// batching armed, must reproduce bit-identically across fresh runs — same
// results, same placement counters, same final simulated clock, and a
// byte-identical Chrome trace (the chaos-sweep standard, applied to the
// scheduling layer).

var schedVec = offload.NewFunc2[float64]("sched.vec",
	func(c *offload.Ctx, task, n int64) (float64, error) {
		s := 0.0
		for i := int64(0); i < n; i++ {
			s += float64(task*1000+i) * 0.5
		}
		return s, nil
	})

// schedOutcome is everything one scheduler run can observe.
type schedOutcome struct {
	results     []float64
	issued      int64
	completed   int64
	inflight    []int
	finalTime   machine.Duration
	chromeTrace []byte
}

// schedRun executes a 40-task Map over every VE of a fresh 2-machine,
// 2-VE-per-machine cluster under pol, with batching armed, and collects the
// outcome.
func schedRun(t *testing.T, pol sched.Policy) schedOutcome {
	t.Helper()
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	cl, err := machine.NewCluster(2, machine.Config{VEs: 2, Timing: &timing})
	if err != nil {
		t.Fatal(err)
	}
	var out schedOutcome
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{
			Batch: offload.BatchPolicy{MaxMessages: 8},
		})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		nodes := cl.VENodes(0)
		if want := []offload.NodeID{1, 2, 3, 4}; len(nodes) != len(want) {
			return fmt.Errorf("VENodes = %v, want %v", nodes, want)
		}
		s, err := offload.NewScheduler(rt, nodes, pol)
		if err != nil {
			return err
		}
		res, err := offload.Map(s, 40, func(task int) offload.Functor[float64] {
			return schedVec.Bind(int64(task), int64(8+(task%7)*31))
		})
		if err != nil {
			return err
		}
		out.results = res
		out.issued = s.Issued()
		out.completed = s.Completed()
		out.inflight = s.InFlight()
		return nil
	})
	if err != nil {
		t.Fatalf("sched run: %v", err)
	}
	out.finalTime = cl.Now()
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	out.chromeTrace = buf.Bytes()
	return out
}

func TestSchedulerDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  func() sched.Policy
	}{
		{"round-robin", sched.RoundRobin},
		{"least-in-flight", sched.LeastInFlight},
		{"affinity", func() sched.Policy {
			return sched.Affinity(func(task int) offload.NodeID {
				return offload.NodeID(1 + (task*7)%4)
			})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := schedRun(t, tc.pol())
			b := schedRun(t, tc.pol())

			// The workload itself must have run to completion...
			if len(a.results) != 40 || a.issued != 40 || a.completed != 40 {
				t.Fatalf("run A: %d results, issued %d, completed %d",
					len(a.results), a.issued, a.completed)
			}
			for i, n := range a.inflight {
				if n != 0 {
					t.Errorf("node slot %d still has %d in flight after Map", i, n)
				}
			}
			// ...with correct results in task order.
			for task, got := range a.results {
				want := 0.0
				n := int64(8 + (task%7)*31)
				for i := int64(0); i < n; i++ {
					want += float64(int64(task)*1000+i) * 0.5
				}
				if got != want {
					t.Errorf("task %d = %v, want %v", task, got, want)
				}
			}

			// Bit-identical reproduction across fresh runs.
			if a.issued != b.issued || a.completed != b.completed {
				t.Errorf("counters diverge: A issued=%d completed=%d, B issued=%d completed=%d",
					a.issued, a.completed, b.issued, b.completed)
			}
			if a.finalTime != b.finalTime {
				t.Errorf("final simulated time diverges: %v != %v", a.finalTime, b.finalTime)
			}
			for i := range a.results {
				if i < len(b.results) && a.results[i] != b.results[i] {
					t.Errorf("result %d diverges: %v != %v", i, a.results[i], b.results[i])
				}
			}
			if !bytes.Equal(a.chromeTrace, b.chromeTrace) {
				t.Errorf("Chrome trace exports diverge (%d vs %d bytes)",
					len(a.chromeTrace), len(b.chromeTrace))
			}
		})
	}
}

// TestSchedulerSingleMachine shards a Map across the VEs of one machine over
// the DMA protocol — the paper's own system, no cluster — with batching off,
// so the scheduler also composes with plain per-message offloads.
func TestSchedulerSingleMachine(t *testing.T) {
	m, err := machine.New(machine.Config{VEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		s, err := offload.NewScheduler(rt, offload.SchedTargets(rt), sched.RoundRobin())
		if err != nil {
			return err
		}
		if got := len(s.Nodes()); got != 4 {
			return fmt.Errorf("SchedTargets found %d nodes, want 4", got)
		}
		res, err := offload.Map(s, 10, func(task int) offload.Functor[float64] {
			return schedVec.Bind(int64(task), 4)
		})
		if err != nil {
			return err
		}
		for task, got := range res {
			want := 0.0
			for i := int64(0); i < 4; i++ {
				want += float64(int64(task)*1000+i) * 0.5
			}
			if got != want {
				return fmt.Errorf("task %d = %v, want %v", task, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVENodesLimit pins the veLimit parameter against the cluster layout.
func TestVENodesLimit(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := cl.VENodes(0)
	if len(all) != 4 || all[0] != 1 || all[3] != 4 {
		t.Errorf("VENodes(0) = %v, want [1 2 3 4]", all)
	}
	one := cl.VENodes(1)
	if len(one) != 2 || one[0] != 1 || one[1] != 2 {
		t.Errorf("VENodes(1) = %v, want [1 2]", one)
	}
}
