package machine_test

import (
	"fmt"
	"log"

	"hamoffload/machine"
	"hamoffload/offload"
)

// exScale is an offloadable function shared by the examples, registered at
// package level like C++ static initialisation.
var exScale = offload.NewFunc2[float64]("machine_example.scale_sum",
	func(c *offload.Ctx, buf offload.BufferPtr[float64], f float64) (float64, error) {
		v, err := offload.ReadLocal(c, buf, 0, buf.Count)
		if err != nil {
			return 0, err
		}
		c.ChargeVector(2*buf.Count, 8*buf.Count, 8)
		s := 0.0
		for i := range v {
			s += v[i] * f
		}
		return s, nil
	})

// Example runs a complete offload program on the simulated A300-8 using the
// paper's DMA protocol. The simulation is deterministic, so even the
// simulated timing in the output is exact.
func Example() {
	m, err := machine.New(machine.Config{VEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		target := offload.NodeID(1)
		buf, err := offload.Allocate[float64](rt, target, 4)
		if err != nil {
			return err
		}
		if err := offload.Put(rt, []float64{1, 2, 3, 4}, buf); err != nil {
			return err
		}
		sum, err := offload.Sync(rt, target, exScale.Bind(buf, 10.0))
		if err != nil {
			return err
		}
		fmt.Printf("scaled sum = %v\n", sum)
		return offload.Free(rt, buf)
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: scaled sum = 100
}

// Example_cluster offloads to a remote machine's Vector Engine over the
// simulated InfiniBand fabric — the paper's §VI outlook — with the same
// functor used locally.
func Example_cluster() {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		local, remote := offload.NodeID(1), offload.NodeID(2)
		for _, node := range []offload.NodeID{local, remote} {
			buf, err := offload.Allocate[float64](rt, node, 3)
			if err != nil {
				return err
			}
			if err := offload.Put(rt, []float64{1, 1, 1}, buf); err != nil {
				return err
			}
			sum, err := offload.Sync(rt, node, exScale.Bind(buf, 2.0))
			if err != nil {
				return err
			}
			fmt.Printf("node %d: %v\n", node, sum)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// node 1: 6
	// node 2: 6
}
