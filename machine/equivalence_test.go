package machine_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/machine"
	"hamoffload/offload"
)

// This file checks the paper's central portability claim mechanically: "We
// could verify that they worked as expected without changing the application
// code" (§V). A randomly generated operation sequence — allocations, frees,
// puts, gets, sync and async offloads — is executed against the in-process
// loopback backend (the oracle) and against both SX-Aurora protocols on the
// simulated machine; every observable value must match exactly.

var eqFMA = offload.NewFunc3[float64]("equiv.fma",
	func(c *offload.Ctx, buf offload.BufferPtr[float64], scale float64, add float64) (float64, error) {
		v, err := offload.ReadLocal(c, buf, 0, buf.Count)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for i := range v {
			v[i] = v[i]*scale + add
			sum += v[i]
		}
		if err := offload.WriteLocal(c, buf, 0, v); err != nil {
			return 0, err
		}
		return sum, nil
	})

// opScript runs a deterministic pseudo-random workload against rt and
// returns the trace of every observable value.
func opScript(seed int64, rt *offload.Runtime) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	var obs []float64
	var bufs []offload.BufferPtr[float64]
	var futs []*offload.Future[float64]

	drain := func() error {
		for _, f := range futs {
			v, err := f.Get()
			if err != nil {
				return err
			}
			obs = append(obs, v)
		}
		futs = nil
		return nil
	}

	for step := 0; step < 60; step++ {
		switch op := rng.Intn(6); {
		case op == 0 || len(bufs) == 0: // allocate
			n := int64(rng.Intn(200) + 1)
			b, err := offload.Allocate[float64](rt, 1, n)
			if err != nil {
				return nil, fmt.Errorf("step %d alloc: %w", step, err)
			}
			bufs = append(bufs, b)
		case op == 1: // put (drain first: a put racing an in-flight kernel
			// would be ordered differently by different backends)
			if err := drain(); err != nil {
				return nil, fmt.Errorf("step %d drain: %w", step, err)
			}
			b := bufs[rng.Intn(len(bufs))]
			vals := make([]float64, b.Count)
			for i := range vals {
				vals[i] = rng.Float64()
			}
			if err := offload.Put(rt, vals, b); err != nil {
				return nil, fmt.Errorf("step %d put: %w", step, err)
			}
		case op == 2: // get (drain for the same ordering reason)
			if err := drain(); err != nil {
				return nil, fmt.Errorf("step %d drain: %w", step, err)
			}
			b := bufs[rng.Intn(len(bufs))]
			out := make([]float64, b.Count)
			if err := offload.Get(rt, b, out); err != nil {
				return nil, fmt.Errorf("step %d get: %w", step, err)
			}
			s := 0.0
			for _, v := range out {
				s += v
			}
			obs = append(obs, s)
		case op == 3: // sync offload (in-order with pending asyncs to the
			// same node on every backend only if drained first)
			if err := drain(); err != nil {
				return nil, fmt.Errorf("step %d drain: %w", step, err)
			}
			b := bufs[rng.Intn(len(bufs))]
			v, err := offload.Sync(rt, 1, eqFMA.Bind(b, rng.Float64(), rng.Float64()))
			if err != nil {
				return nil, fmt.Errorf("step %d sync: %w", step, err)
			}
			obs = append(obs, v)
		case op == 4: // async offload (drained later, in order)
			b := bufs[rng.Intn(len(bufs))]
			futs = append(futs, offload.Async(rt, 1, eqFMA.Bind(b, rng.Float64(), 1.0)))
			if len(futs) >= 4 {
				if err := drain(); err != nil {
					return nil, fmt.Errorf("step %d drain: %w", step, err)
				}
			}
		case op == 5 && len(bufs) > 1: // free
			i := rng.Intn(len(bufs))
			// Outstanding asyncs may reference any buffer; drain first.
			if err := drain(); err != nil {
				return nil, fmt.Errorf("step %d drain: %w", step, err)
			}
			if err := offload.Free(rt, bufs[i]); err != nil {
				return nil, fmt.Errorf("step %d free: %w", step, err)
			}
			bufs = append(bufs[:i], bufs[i+1:]...)
		}
	}
	if err := drain(); err != nil {
		return nil, err
	}
	return obs, nil
}

// oracle runs the script on the loopback backend.
func oracle(t *testing.T, seed int64) []float64 {
	t.Helper()
	hb, tb, err := locb.NewPair(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	target := offload.NewRuntime(tb, "equiv-oracle-target")
	host := offload.NewRuntime(hb, "equiv-oracle-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("oracle Serve: %v", err)
		}
	}()
	obs, err := opScript(seed, host)
	if err != nil {
		t.Fatalf("oracle script: %v", err)
	}
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return obs
}

func TestBackendEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := oracle(t, seed)
		if len(want) == 0 {
			t.Fatalf("seed %d produced no observations", seed)
		}
		for name, connect := range connectors {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				m, err := machine.New(machine.Config{VEs: 1})
				if err != nil {
					t.Fatal(err)
				}
				err = m.RunMain(func(p *machine.Proc) error {
					rt, err := connect(p, m)
					if err != nil {
						return err
					}
					defer func() { _ = rt.Finalize() }()
					got, err := opScript(seed, rt)
					if err != nil {
						return err
					}
					if len(got) != len(want) {
						t.Fatalf("observation count %d != oracle %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("observation %d: %v != oracle %v", i, got[i], want[i])
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
