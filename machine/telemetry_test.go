package machine_test

import (
	"bytes"
	"testing"

	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// Zero-cost guard for the telemetry integration at the machine level: a
// collector with flows disarmed does only host-side bookkeeping, so the
// simulated run — every span and its final time — must be bit-identical to
// the same run without a collector. (Arming flows adds 12 wire bytes per
// message and is a deliberate, deterministic timing change; that case is
// covered by the determinism tests in bench.)

// telemetryRun executes a small traced DMA workload — sync offloads plus a
// batch — and returns the Chrome trace bytes and the final simulated time.
func telemetryRun(t *testing.T, col *telemetry.Collector) ([]byte, simtime.Time) {
	t.Helper()
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	m, err := machine.New(machine.Config{VEs: 1, Timing: &timing, Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	var final simtime.Time
	err = m.RunMain(func(p *machine.Proc) error {
		rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{
			Batch: offload.BatchPolicy{MaxMessages: 4},
		})
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < 4; i++ {
			if _, err := offload.Sync(rt, 1, mtEmpty.Bind()); err != nil {
				return err
			}
		}
		b := offload.NewBatcher(rt)
		var futs []*offload.Future[offload.Unit]
		for i := 0; i < 4; i++ {
			futs = append(futs, offload.BatchAdd(b, 1, mtEmpty.Bind()))
		}
		b.FlushAll()
		if _, err := offload.GetAll(futs); err != nil {
			return err
		}
		final = p.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var chrome bytes.Buffer
	if err := tr.ExportChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	return chrome.Bytes(), final
}

func TestTelemetryDisarmedIsZeroCost(t *testing.T) {
	baseChrome, baseFinal := telemetryRun(t, nil)
	col := telemetry.New(telemetry.Config{})
	telChrome, telFinal := telemetryRun(t, col)
	if baseFinal != telFinal {
		t.Fatalf("final simulated time changed: %v without telemetry, %v with a disarmed collector",
			baseFinal, telFinal)
	}
	if !bytes.Equal(baseChrome, telChrome) {
		t.Fatal("Chrome trace differs with a disarmed collector attached")
	}
	// The disarmed collector must still have observed the run on the host
	// side: latencies and in-flight gauges, but no flow events.
	if rep := col.SLOReport(); rep.N == 0 {
		t.Fatal("disarmed collector observed no offload latencies")
	}
	if n := len(col.FlowEvents()); n != 0 {
		t.Fatalf("disarmed collector recorded %d flow events, want 0", n)
	}
	if len(col.Series()) == 0 {
		t.Fatal("disarmed collector recorded no series")
	}
}
