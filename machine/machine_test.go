package machine_test

import (
	"strings"
	"testing"

	"hamoffload/machine"
	"hamoffload/offload"
)

// Offloadable functions for the integration tests, registered at package
// level like C++ static initialisation.
var (
	mtEmpty = offload.NewFunc0[offload.Unit]("machine.empty",
		func(c *offload.Ctx) (offload.Unit, error) { return offload.Unit{}, nil })

	mtDot = offload.NewFunc3[float64]("machine.dot",
		func(c *offload.Ctx, a, b offload.BufferPtr[float64], n int64) (float64, error) {
			av, err := offload.ReadLocal(c, a, 0, n)
			if err != nil {
				return 0, err
			}
			bv, err := offload.ReadLocal(c, b, 0, n)
			if err != nil {
				return 0, err
			}
			c.ChargeVector(2*n, 16*n, 8)
			r := 0.0
			for i := range av {
				r += av[i] * bv[i]
			}
			return r, nil
		})

	mtBigResult = offload.NewFunc1[[]float64]("machine.bigresult",
		func(c *offload.Ctx, n int64) ([]float64, error) {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(i) * 0.5
			}
			return out, nil
		})
)

type connector func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error)

var connectors = map[string]connector{
	"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
		return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
	},
	"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
		return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
	},
}

// TestInnerProductOnBothProtocols runs the paper's Fig. 2 program on the
// simulated A300-8 over both messaging protocols and checks the numerical
// result — the "applications run unchanged on either backend" property of
// §V.
func TestInnerProductOnBothProtocols(t *testing.T) {
	for name, connect := range connectors {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 1})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				const n = 1024
				a := make([]float64, n)
				b := make([]float64, n)
				want := 0.0
				for i := range a {
					a[i] = float64(i)
					b[i] = 0.25
					want += a[i] * b[i]
				}
				target := offload.NodeID(1)
				aT, err := offload.Allocate[float64](rt, target, n)
				if err != nil {
					return err
				}
				bT, err := offload.Allocate[float64](rt, target, n)
				if err != nil {
					return err
				}
				if err := offload.Put(rt, a, aT); err != nil {
					return err
				}
				if err := offload.Put(rt, b, bT); err != nil {
					return err
				}
				got, err := offload.Sync(rt, target, mtDot.Bind(aT, bT, n))
				if err != nil {
					return err
				}
				if got != want {
					t.Errorf("dot = %v, want %v", got, want)
				}
				if err := offload.Free(rt, aT); err != nil {
					return err
				}
				if err := offload.Free(rt, bT); err != nil {
					return err
				}
				return rt.Finalize()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// measureEmpty returns the average empty-offload cost in microseconds over
// the given protocol, following the paper's methodology (warm-up, then many
// timed repetitions).
func measureEmpty(t *testing.T, connect connector, reps int, socket int) float64 {
	t.Helper()
	m, err := machine.New(machine.Config{VEs: 1, Socket: socket})
	if err != nil {
		t.Fatal(err)
	}
	var us float64
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := connect(p, m)
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < 10; i++ { // warm-up
			if _, err := offload.Sync(rt, 1, mtEmpty.Bind()); err != nil {
				return err
			}
		}
		start := m.Now()
		for i := 0; i < reps; i++ {
			if _, err := offload.Sync(rt, 1, mtEmpty.Bind()); err != nil {
				return err
			}
		}
		us = (m.Now() - start).Microseconds() / float64(reps)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return us
}

// TestFig9OffloadCostCalibration checks the paper's headline numbers: the
// HAM-Offload empty-offload cost is ≈430 µs over the VEO protocol and
// ≈6.1 µs over the DMA protocol, a ratio of ≈70.8×.
func TestFig9OffloadCostCalibration(t *testing.T) {
	veo := measureEmpty(t, connectors["veo"], 50, 0)
	dma := measureEmpty(t, connectors["dma"], 200, 0)
	if veo < 430*0.8 || veo > 430*1.2 {
		t.Errorf("HAM-VEO empty offload = %.1f us, want ≈430 (±20%%)", veo)
	}
	if dma < 6.1*0.8 || dma > 6.1*1.2 {
		t.Errorf("HAM-DMA empty offload = %.2f us, want ≈6.1 (±20%%)", dma)
	}
	if ratio := veo / dma; ratio < 70.8*0.7 || ratio > 70.8*1.3 {
		t.Errorf("VEO/DMA ratio = %.1f, want ≈70.8 (±30%%)", ratio)
	}
}

// TestSecondSocketAddsUPIMicrosecond reproduces §V-A: offloading from the
// second CPU socket adds up to ~1 µs to the DMA measurement.
func TestSecondSocketAddsUPIMicrosecond(t *testing.T) {
	local := measureEmpty(t, connectors["dma"], 200, 0)
	remote := measureEmpty(t, connectors["dma"], 200, 1)
	extra := remote - local
	if extra <= 0 {
		t.Errorf("second socket faster than first: %.2f vs %.2f us", remote, local)
	}
	if extra > 1.5 {
		t.Errorf("UPI penalty = %.2f us, paper says up to ~1 us", extra)
	}
}

// TestLargeResultsAndPutGetOnBothProtocols exercises the overflow result
// path and round-trip data transfers.
func TestLargeResultsAndPutGetOnBothProtocols(t *testing.T) {
	for name, connect := range connectors {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 1})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				// 100 float64 = 800 B result, beyond the 248 B inline area.
				out, err := offload.Sync(rt, 1, mtBigResult.Bind(int64(100)))
				if err != nil {
					return err
				}
				if len(out) != 100 || out[99] != 49.5 {
					t.Errorf("big result = len %d, last %v", len(out), out[len(out)-1])
				}
				// Put/Get round trip through VE memory.
				buf, err := offload.Allocate[int64](rt, 1, 4096)
				if err != nil {
					return err
				}
				src := make([]int64, 4096)
				for i := range src {
					src[i] = int64(i * 3)
				}
				if err := offload.Put(rt, src, buf); err != nil {
					return err
				}
				dst := make([]int64, 4096)
				if err := offload.Get(rt, buf, dst); err != nil {
					return err
				}
				for i := range src {
					if dst[i] != src[i] {
						t.Fatalf("put/get mismatch at %d", i)
					}
				}
				return offload.Free(rt, buf)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMultiVEOffload drives all eight VEs of the A300-8 from one host
// process over the DMA protocol.
func TestMultiVEOffload(t *testing.T) {
	m, err := machine.New(machine.Config{VEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		if rt.NumNodes() != 9 {
			t.Errorf("NumNodes = %d, want 9", rt.NumNodes())
		}
		// Offload to every VE; descriptors must identify them.
		for ve := 1; ve <= 8; ve++ {
			d, err := rt.Ping(offload.NodeID(ve))
			if err != nil {
				return err
			}
			if d.Device != "NEC VE Type 10B" {
				t.Errorf("node %d descriptor = %+v", ve, d)
			}
		}
		// Async fan-out to all VEs, then collect.
		futs := make([]*offload.Future[offload.Unit], 0, 8)
		for ve := 1; ve <= 8; ve++ {
			futs = append(futs, offload.Async(rt, offload.NodeID(ve), mtEmpty.Bind()))
		}
		for _, f := range futs {
			if _, err := f.Get(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation covers the machine constructor's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := machine.New(machine.Config{VEs: 99}); err == nil {
		t.Error("VEs=99 accepted")
	}
	if _, err := machine.New(machine.Config{Socket: 5}); err == nil {
		t.Error("socket 5 accepted")
	}
	if _, err := machine.New(machine.Config{VEs: -1}); err == nil {
		t.Error("negative VEs accepted")
	}
}

// TestDeterministicReplay asserts the simulation's core property: two
// identical runs produce bit-identical simulated times and event counts.
func TestDeterministicReplay(t *testing.T) {
	run := func() (machine.Duration, uint64) {
		m, err := machine.New(machine.Config{VEs: 2})
		if err != nil {
			t.Fatal(err)
		}
		err = m.RunMain(func(p *machine.Proc) error {
			rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			if err != nil {
				return err
			}
			defer func() { _ = rt.Finalize() }()
			buf, err := offload.Allocate[float64](rt, 1, 1024)
			if err != nil {
				return err
			}
			data := make([]float64, 1024)
			for i := 0; i < 20; i++ {
				if err := offload.Put(rt, data, buf); err != nil {
					return err
				}
				f1 := offload.Async(rt, 1, mtEmpty.Bind())
				f2 := offload.Async(rt, 2, mtEmpty.Bind())
				if _, err := f2.Get(); err != nil {
					return err
				}
				if _, err := f1.Get(); err != nil {
					return err
				}
			}
			return offload.Free(rt, buf)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Now(), m.Eng.Events()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("replay diverged: %v/%d vs %v/%d", t1, e1, t2, e2)
	}
}

// TestConfigKnobs exercises the machine-level ablation switches.
func TestConfigKnobs(t *testing.T) {
	huge := false
	m, err := machine.New(machine.Config{HugePages: &huge, NaiveDMAManager: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Timing.HostPageSize != 4096 {
		t.Errorf("page size = %v, want 4096", m.Timing.HostPageSize)
	}
	// A machine with tiny VE memory propagates allocation failures through
	// the offload API.
	small, err := machine.New(machine.Config{VEMemoryBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	err = small.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, small, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		if _, err := offload.Allocate[float64](rt, 1, 1<<20); err == nil {
			t.Error("allocation beyond VE memory accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mtEchoStr round-trips a string, for message-size boundary probing.
var mtEchoStr = offload.NewFunc1[string]("machine.echostr",
	func(c *offload.Ctx, s string) (string, error) { return s, nil })

// TestMessageSizeBoundaries walks offload message sizes across the protocol
// buffer limit: everything that fits must round-trip bit-exactly, the first
// size beyond the buffer must fail cleanly, and the channel must survive.
func TestMessageSizeBoundaries(t *testing.T) {
	const bufSize = 1024
	for name, base := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{BufSize: bufSize})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{BufSize: bufSize})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 1})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := base(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				// Wire overhead: u32 key + u32 string length.
				const overhead = 8
				for _, strLen := range []int{0, 1, 7, bufSize - overhead - 1, bufSize - overhead} {
					s := strings.Repeat("x", strLen)
					got, err := offload.Sync(rt, 1, mtEchoStr.Bind(s))
					if err != nil {
						t.Errorf("len %d: %v", strLen, err)
						continue
					}
					if got != s {
						t.Errorf("len %d: corrupted round trip", strLen)
					}
				}
				// One byte past the buffer: clean rejection.
				if _, err := offload.Sync(rt, 1, mtEchoStr.Bind(strings.Repeat("x", bufSize-overhead+1))); err == nil {
					t.Error("message one byte past the buffer accepted")
				}
				// The channel survives.
				if got, err := offload.Sync(rt, 1, mtEchoStr.Bind("alive")); err != nil || got != "alive" {
					t.Errorf("post-rejection offload: %q, %v", got, err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResultSizeBoundaries walks result sizes across the inline/overflow
// split of both protocols: the response payload is 5+8n bytes, so n=30 fits
// the 248-byte inline area and n=31 takes the overflow path.
func TestResultSizeBoundaries(t *testing.T) {
	for name, connect := range connectors {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 1})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				for _, n := range []int64{1, 29, 30, 31, 32, 100} {
					out, err := offload.Sync(rt, 1, mtBigResult.Bind(n))
					if err != nil {
						t.Errorf("n=%d: %v", n, err)
						continue
					}
					if int64(len(out)) != n {
						t.Errorf("n=%d: got %d elements", n, len(out))
						continue
					}
					for i := range out {
						if out[i] != float64(i)*0.5 {
							t.Errorf("n=%d: element %d corrupted", n, i)
							break
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFanOutHelpers drives AsyncAll/GetAll across all eight VEs.
func TestFanOutHelpers(t *testing.T) {
	m, err := machine.New(machine.Config{VEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		nodes := make([]offload.NodeID, 8)
		for i := range nodes {
			nodes[i] = offload.NodeID(i + 1)
		}
		futs := offload.AsyncAll(rt, nodes, mtEchoStr.Bind("fan"))
		out, err := offload.GetAll(futs)
		if err != nil {
			return err
		}
		for i, s := range out {
			if s != "fan" {
				t.Errorf("node %d returned %q", i+1, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
