package machine_test

import (
	"bytes"
	"fmt"
	"testing"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
	"hamoffload/sched"
	"hamoffload/sched/health"
)

// This file is the deterministic chaos sweep: a fixed offload workload runs
// under an aggressive seeded fault plan — injected DMA errors, payload bit
// flips, a VEOS stall window — with the retry policy armed, and two fresh
// runs must agree bit for bit on every observable: results, error strings,
// retry/timeout/fault counters, the final simulated clock, and the exported
// Chrome trace. Crashes are exercised separately (the conformance fault
// tests); this sweep pins down that surviving faults costs no determinism.

var chaosVec = offload.NewFunc1[[]float64]("chaos.vec",
	func(c *offload.Ctx, n int64) ([]float64, error) {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)*0.25 + float64(n)
		}
		return out, nil
	})

// chaosPlan is the sweep's fault schedule. The op-scheduled transfer errors
// land mid-workload (clear of the unretried connect sequence), the bit
// flips are drawn from the seed at a rate that corrupts several payloads
// per run, and the stall window slows every VEOS operation it covers.
func chaosPlan(seed uint64) *faults.Plan {
	return &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: faults.SitePrivDMA, Node: faults.AnyNode,
			AfterOp: 60, Every: 9, Count: 12},
		{Kind: faults.DMAError, Site: faults.SiteUserDMA, Node: faults.AnyNode,
			AfterOp: 5, Every: 7, Count: 8},
		// The DMA protocol's responses ride on flip-proof SHM word stores,
		// so its retry path is only reachable through corrupted user-DMA
		// message fetches — hence the heavier rate on that site.
		{Kind: faults.BitFlip, Site: faults.SiteUserDMA, Node: faults.AnyNode, Rate: 0.25},
		{Kind: faults.BitFlip, Node: faults.AnyNode, Rate: 0.03},
		{Kind: faults.Stall, Site: faults.SiteVEOS, Node: faults.AnyNode,
			From: simtime.Time(50 * simtime.Microsecond), Until: simtime.Time(150 * simtime.Microsecond)},
	}}
}

// chaosOutcome is everything one sweep run can observe.
type chaosOutcome struct {
	observations []string
	retries      int64
	timeouts     int64
	injected     uint64
	finalTime    machine.Duration
	chromeTrace  []byte
}

// chaosRun executes the workload on a fresh machine under plan and collects
// the outcome. Errors from individual offloads are observations, not test
// failures: the sweep asserts reproducibility, not fault-freeness.
func chaosRun(t *testing.T, protocol string, plan *faults.Plan) chaosOutcome {
	t.Helper()
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	m, err := machine.New(machine.Config{VEs: 1, Timing: &timing, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var out chaosOutcome
	err = m.RunMain(func(p *machine.Proc) error {
		opts := machine.ProtocolOptions{
			OffloadTimeout: 20 * machine.Millisecond,
			Retry: offload.FaultTolerance{
				MaxRetries:  6,
				BackoffBase: machine.Microsecond,
				BackoffMax:  20 * machine.Microsecond,
			},
		}
		var rt *offload.Runtime
		var err error
		if protocol == "veo" {
			rt, err = machine.ConnectVEO(p, m, opts)
		} else {
			rt, err = machine.ConnectDMA(p, m, opts)
		}
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < 40; i++ {
			n := int64(8 + (i%7)*31)
			v, err := offload.Sync(rt, 1, chaosVec.Bind(n))
			if err != nil {
				out.observations = append(out.observations, fmt.Sprintf("%d: ERR %v", i, err))
				continue
			}
			sum := 0.0
			for _, x := range v {
				sum += x
			}
			out.observations = append(out.observations, fmt.Sprintf("%d: len %d sum %v", i, len(v), sum))
		}
		out.retries = rt.Retries()
		out.timeouts = rt.Timeouts()
		return nil
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	out.injected = m.Timing.Faults.Injected()
	out.finalTime = m.Now()
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	out.chromeTrace = buf.Bytes()
	return out
}

func TestChaosSweepDeterminism(t *testing.T) {
	for _, protocol := range []string{"veo", "dma"} {
		t.Run(protocol, func(t *testing.T) {
			a := chaosRun(t, protocol, chaosPlan(1234))
			b := chaosRun(t, protocol, chaosPlan(1234))

			// The sweep must actually exercise the fault machinery...
			if a.injected == 0 {
				t.Fatalf("no faults injected; the sweep exercises nothing")
			}
			if a.retries == 0 {
				t.Errorf("no retries performed; the fault pressure is too low")
			}
			// ...and the workload must survive it: all 40 offloads observed.
			if len(a.observations) != 40 {
				t.Fatalf("got %d observations, want 40", len(a.observations))
			}

			// Bit-identical reproduction across fresh runs.
			if a.retries != b.retries || a.timeouts != b.timeouts || a.injected != b.injected {
				t.Errorf("counters diverge: run A retries=%d timeouts=%d injected=%d, run B retries=%d timeouts=%d injected=%d",
					a.retries, a.timeouts, a.injected, b.retries, b.timeouts, b.injected)
			}
			if a.finalTime != b.finalTime {
				t.Errorf("final simulated time diverges: %v != %v", a.finalTime, b.finalTime)
			}
			for i := range a.observations {
				if i < len(b.observations) && a.observations[i] != b.observations[i] {
					t.Errorf("observation %d diverges:\n  A: %s\n  B: %s",
						i, a.observations[i], b.observations[i])
				}
			}
			if len(a.observations) != len(b.observations) {
				t.Errorf("observation counts diverge: %d != %d", len(a.observations), len(b.observations))
			}
			if !bytes.Equal(a.chromeTrace, b.chromeTrace) {
				t.Errorf("Chrome trace exports diverge (%d vs %d bytes)",
					len(a.chromeTrace), len(b.chromeTrace))
			}
		})
	}
}

// TestChaosDifferentSeedsDiverge is the sanity inverse: a different plan
// seed must shift the probabilistic fault stream, so the two sweeps cannot
// be identical in every observable. (Op-scheduled rules are seed-blind, so
// only the counters and timing are compared, not the result values.)
func TestChaosDifferentSeedsDiverge(t *testing.T) {
	a := chaosRun(t, "dma", chaosPlan(1234))
	b := chaosRun(t, "dma", chaosPlan(99991))
	if a.injected == b.injected && a.finalTime == b.finalTime && a.retries == b.retries {
		t.Errorf("seeds 1234 and 99991 produced identical fault streams (injected=%d retries=%d time=%v); the seed is not feeding the stream",
			a.injected, a.retries, a.finalTime)
	}
}

// The gray sweep: the same determinism contract for the fail-slow stack.
// One VE degrades to 10x its nominal service time inside a window (plus
// seed-drawn jitter everywhere), and the full resilience machinery runs on
// top — health-scored scheduling with circuit breakers, hedged requests,
// retry budgets, seeded backoff jitter. Two fresh runs must agree bit for
// bit on every observable, including the Chrome trace with its breaker and
// hedge instants.

// grayPlan degrades VE 0 (application node 1) by Factor inside a window
// that covers the whole workload, and sprinkles seed-drawn jitter on every
// PCIe crossing so slow responses are erratic, not cleanly proportional.
func grayPlan(seed uint64) *faults.Plan {
	return &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Kind: faults.SlowDown, Site: faults.SiteAny, Node: 0, Factor: 10,
			From: simtime.Time(20 * simtime.Microsecond), Until: simtime.Time(1 << 62)},
		{Kind: faults.Jitter, Site: faults.SitePCIe, Node: faults.AnyNode,
			Rate: 0.4, JitterMax: 2 * simtime.Microsecond},
	}}
}

// grayOutcome is everything one gray sweep run can observe.
type grayOutcome struct {
	observations []string
	hedges       int64
	hedgeWins    int64
	budgetDenied int64
	retries      int64
	transitions  int64
	states       string
	injected     uint64
	finalTime    machine.Duration
	chromeTrace  []byte
}

// grayRun executes the health-scheduled workload on a fresh 3-VE machine
// under plan with hedging and budgets armed, and collects the outcome.
func grayRun(t *testing.T, seed uint64) grayOutcome {
	t.Helper()
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	m, err := machine.New(machine.Config{VEs: 3, Timing: &timing, Faults: grayPlan(seed)})
	if err != nil {
		t.Fatal(err)
	}
	var out grayOutcome
	err = m.RunMain(func(p *machine.Proc) error {
		nodes := []offload.NodeID{1, 2, 3}
		var trk *health.Tracker
		opts := machine.ProtocolOptions{
			BufSize: 1 << 16,
			Retry: offload.FaultTolerance{
				MaxRetries:  4,
				BackoffBase: machine.Microsecond,
				BackoffMax:  20 * machine.Microsecond,
				Seed:        seed,
			},
			Hedge: offload.HedgePolicy{
				Delay:   40 * machine.Microsecond,
				Targets: nodes,
				Healthy: func(n offload.NodeID) bool { return trk.Allows(n) },
				Seed:    seed,
			},
			RetryBudget: offload.RetryBudget{Tokens: 64, Refill: 50 * machine.Microsecond},
		}
		rt, err := machine.ConnectDMA(p, m, opts)
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		trk = health.New(health.Config{
			OutlierFactor:  3,
			OutlierStrikes: 4,
			FailureStrikes: 3,
			OpenFor:        400 * machine.Microsecond,
		}, nodes, rt.SimNow)
		trk.SetTracer(m.Timing.Tracer.Node(0, "health", p))
		pol := sched.HealthAware(sched.RoundRobin(), trk)
		inflight := make([]int, len(nodes))
		for i := 0; i < 120; i++ {
			node := nodes[pol.Pick(i, nodes, inflight)]
			n := int64(2048 + (i%7)*512)
			begin := rt.SimNow()
			v, err := offload.Sync(rt, node, chaosVec.Bind(n))
			trk.Observe(node, rt.SimNow().Sub(begin), err != nil)
			if err != nil {
				out.observations = append(out.observations, fmt.Sprintf("%d: node %d ERR %v", i, node, err))
				continue
			}
			sum := 0.0
			for _, x := range v {
				sum += x
			}
			out.observations = append(out.observations, fmt.Sprintf("%d: node %d len %d sum %v", i, node, len(v), sum))
		}
		out.hedges = rt.Hedges()
		out.hedgeWins = rt.HedgeWins()
		out.budgetDenied = rt.BudgetDenied()
		out.retries = rt.Retries()
		out.transitions = trk.Transitions()
		out.states = fmt.Sprintf("%v %v %v", trk.StateOf(1), trk.StateOf(2), trk.StateOf(3))
		return nil
	})
	if err != nil {
		t.Fatalf("gray run: %v", err)
	}
	out.injected = m.Timing.Faults.Injected()
	out.finalTime = m.Now()
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	out.chromeTrace = buf.Bytes()
	return out
}

func TestChaosGraySweepDeterminism(t *testing.T) {
	a := grayRun(t, 4242)
	b := grayRun(t, 4242)

	// The sweep must exercise the whole gray stack: injected slowdowns,
	// hedges racing the sick node, breaker transitions routing around it.
	if a.injected == 0 {
		t.Fatalf("no faults injected; the sweep exercises nothing")
	}
	if a.hedges == 0 {
		t.Errorf("no hedges issued; the hedge delay never tripped")
	}
	if a.transitions == 0 {
		t.Errorf("no breaker transitions; the degraded VE was never ejected")
	}
	if len(a.observations) != 120 {
		t.Fatalf("got %d observations, want 120", len(a.observations))
	}

	// Bit-identical reproduction across fresh runs.
	if a.hedges != b.hedges || a.hedgeWins != b.hedgeWins ||
		a.budgetDenied != b.budgetDenied || a.retries != b.retries ||
		a.transitions != b.transitions || a.injected != b.injected {
		t.Errorf("counters diverge:\n  A: hedges=%d wins=%d denied=%d retries=%d transitions=%d injected=%d\n  B: hedges=%d wins=%d denied=%d retries=%d transitions=%d injected=%d",
			a.hedges, a.hedgeWins, a.budgetDenied, a.retries, a.transitions, a.injected,
			b.hedges, b.hedgeWins, b.budgetDenied, b.retries, b.transitions, b.injected)
	}
	if a.states != b.states {
		t.Errorf("breaker states diverge: %q != %q", a.states, b.states)
	}
	if a.finalTime != b.finalTime {
		t.Errorf("final simulated time diverges: %v != %v", a.finalTime, b.finalTime)
	}
	for i := range a.observations {
		if i < len(b.observations) && a.observations[i] != b.observations[i] {
			t.Errorf("observation %d diverges:\n  A: %s\n  B: %s", i, a.observations[i], b.observations[i])
		}
	}
	if len(a.observations) != len(b.observations) {
		t.Errorf("observation counts diverge: %d != %d", len(a.observations), len(b.observations))
	}
	if !bytes.Equal(a.chromeTrace, b.chromeTrace) {
		t.Errorf("Chrome trace exports diverge (%d vs %d bytes)", len(a.chromeTrace), len(b.chromeTrace))
	}
}

// TestChaosGrayDifferentSeedsDiverge: a different seed shifts the jitter
// stream, the backoff jitter and the hedge-delay jitter, so the sweeps
// cannot agree on every observable.
func TestChaosGrayDifferentSeedsDiverge(t *testing.T) {
	a := grayRun(t, 4242)
	b := grayRun(t, 171717)
	if a.injected == b.injected && a.finalTime == b.finalTime && a.hedges == b.hedges {
		t.Errorf("seeds 4242 and 171717 produced identical gray streams (injected=%d hedges=%d time=%v); the seed is not feeding the stream",
			a.injected, a.hedges, a.finalTime)
	}
}
