package machine_test

import (
	"bytes"
	"fmt"
	"testing"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// This file is the deterministic chaos sweep: a fixed offload workload runs
// under an aggressive seeded fault plan — injected DMA errors, payload bit
// flips, a VEOS stall window — with the retry policy armed, and two fresh
// runs must agree bit for bit on every observable: results, error strings,
// retry/timeout/fault counters, the final simulated clock, and the exported
// Chrome trace. Crashes are exercised separately (the conformance fault
// tests); this sweep pins down that surviving faults costs no determinism.

var chaosVec = offload.NewFunc1[[]float64]("chaos.vec",
	func(c *offload.Ctx, n int64) ([]float64, error) {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)*0.25 + float64(n)
		}
		return out, nil
	})

// chaosPlan is the sweep's fault schedule. The op-scheduled transfer errors
// land mid-workload (clear of the unretried connect sequence), the bit
// flips are drawn from the seed at a rate that corrupts several payloads
// per run, and the stall window slows every VEOS operation it covers.
func chaosPlan(seed uint64) *faults.Plan {
	return &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: faults.SitePrivDMA, Node: faults.AnyNode,
			AfterOp: 60, Every: 9, Count: 12},
		{Kind: faults.DMAError, Site: faults.SiteUserDMA, Node: faults.AnyNode,
			AfterOp: 5, Every: 7, Count: 8},
		// The DMA protocol's responses ride on flip-proof SHM word stores,
		// so its retry path is only reachable through corrupted user-DMA
		// message fetches — hence the heavier rate on that site.
		{Kind: faults.BitFlip, Site: faults.SiteUserDMA, Node: faults.AnyNode, Rate: 0.25},
		{Kind: faults.BitFlip, Node: faults.AnyNode, Rate: 0.03},
		{Kind: faults.Stall, Site: faults.SiteVEOS, Node: faults.AnyNode,
			From: simtime.Time(50 * simtime.Microsecond), Until: simtime.Time(150 * simtime.Microsecond)},
	}}
}

// chaosOutcome is everything one sweep run can observe.
type chaosOutcome struct {
	observations []string
	retries      int64
	timeouts     int64
	injected     uint64
	finalTime    machine.Duration
	chromeTrace  []byte
}

// chaosRun executes the workload on a fresh machine under plan and collects
// the outcome. Errors from individual offloads are observations, not test
// failures: the sweep asserts reproducibility, not fault-freeness.
func chaosRun(t *testing.T, protocol string, plan *faults.Plan) chaosOutcome {
	t.Helper()
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	m, err := machine.New(machine.Config{VEs: 1, Timing: &timing, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var out chaosOutcome
	err = m.RunMain(func(p *machine.Proc) error {
		opts := machine.ProtocolOptions{
			OffloadTimeout: 20 * machine.Millisecond,
			Retry: offload.FaultTolerance{
				MaxRetries:  6,
				BackoffBase: machine.Microsecond,
				BackoffMax:  20 * machine.Microsecond,
			},
		}
		var rt *offload.Runtime
		var err error
		if protocol == "veo" {
			rt, err = machine.ConnectVEO(p, m, opts)
		} else {
			rt, err = machine.ConnectDMA(p, m, opts)
		}
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < 40; i++ {
			n := int64(8 + (i%7)*31)
			v, err := offload.Sync(rt, 1, chaosVec.Bind(n))
			if err != nil {
				out.observations = append(out.observations, fmt.Sprintf("%d: ERR %v", i, err))
				continue
			}
			sum := 0.0
			for _, x := range v {
				sum += x
			}
			out.observations = append(out.observations, fmt.Sprintf("%d: len %d sum %v", i, len(v), sum))
		}
		out.retries = rt.Retries()
		out.timeouts = rt.Timeouts()
		return nil
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	out.injected = m.Timing.Faults.Injected()
	out.finalTime = m.Now()
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	out.chromeTrace = buf.Bytes()
	return out
}

func TestChaosSweepDeterminism(t *testing.T) {
	for _, protocol := range []string{"veo", "dma"} {
		t.Run(protocol, func(t *testing.T) {
			a := chaosRun(t, protocol, chaosPlan(1234))
			b := chaosRun(t, protocol, chaosPlan(1234))

			// The sweep must actually exercise the fault machinery...
			if a.injected == 0 {
				t.Fatalf("no faults injected; the sweep exercises nothing")
			}
			if a.retries == 0 {
				t.Errorf("no retries performed; the fault pressure is too low")
			}
			// ...and the workload must survive it: all 40 offloads observed.
			if len(a.observations) != 40 {
				t.Fatalf("got %d observations, want 40", len(a.observations))
			}

			// Bit-identical reproduction across fresh runs.
			if a.retries != b.retries || a.timeouts != b.timeouts || a.injected != b.injected {
				t.Errorf("counters diverge: run A retries=%d timeouts=%d injected=%d, run B retries=%d timeouts=%d injected=%d",
					a.retries, a.timeouts, a.injected, b.retries, b.timeouts, b.injected)
			}
			if a.finalTime != b.finalTime {
				t.Errorf("final simulated time diverges: %v != %v", a.finalTime, b.finalTime)
			}
			for i := range a.observations {
				if i < len(b.observations) && a.observations[i] != b.observations[i] {
					t.Errorf("observation %d diverges:\n  A: %s\n  B: %s",
						i, a.observations[i], b.observations[i])
				}
			}
			if len(a.observations) != len(b.observations) {
				t.Errorf("observation counts diverge: %d != %d", len(a.observations), len(b.observations))
			}
			if !bytes.Equal(a.chromeTrace, b.chromeTrace) {
				t.Errorf("Chrome trace exports diverge (%d vs %d bytes)",
					len(a.chromeTrace), len(b.chromeTrace))
			}
		})
	}
}

// TestChaosDifferentSeedsDiverge is the sanity inverse: a different plan
// seed must shift the probabilistic fault stream, so the two sweeps cannot
// be identical in every observable. (Op-scheduled rules are seed-blind, so
// only the counters and timing are compared, not the result values.)
func TestChaosDifferentSeedsDiverge(t *testing.T) {
	a := chaosRun(t, "dma", chaosPlan(1234))
	b := chaosRun(t, "dma", chaosPlan(99991))
	if a.injected == b.injected && a.finalTime == b.finalTime && a.retries == b.retries {
		t.Errorf("seeds 1234 and 99991 produced identical fault streams (injected=%d retries=%d time=%v); the seed is not feeding the stream",
			a.injected, a.retries, a.finalTime)
	}
}
