package machine

import (
	"fmt"

	"hamoffload/internal/backend/dmab"
	"hamoffload/internal/backend/mpib"
	"hamoffload/internal/core"
	"hamoffload/internal/ib"
	"hamoffload/internal/simtime"
	"hamoffload/internal/veos"
)

// Cluster is several simulated SX-Aurora nodes sharing one simulation engine
// and connected through an InfiniBand fabric — the platform of the paper's
// §VI outlook, where HAM-Offload applications offload to remote Vector
// Engines without code changes.
type Cluster struct {
	Eng   *simtime.Engine
	Nodes []*Machine
	IB    *ib.Fabric
}

// NewCluster builds n identical machines from cfg plus the IB network.
func NewCluster(n int, cfg Config) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("machine: a cluster needs at least 2 nodes, got %d", n)
	}
	eng := simtime.NewEngine()
	c := &Cluster{Eng: eng}
	for i := 0; i < n; i++ {
		m, err := newWithEngine(eng, fmt.Sprintf("m%d-", i), cfg)
		if err != nil {
			return nil, fmt.Errorf("machine: building cluster node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, m)
	}
	fab, err := ib.NewFabric(eng, n, ib.DefaultParams())
	if err != nil {
		return nil, err
	}
	c.IB = fab
	return c, nil
}

// RunMain runs fn as the first machine's VH program and drives the shared
// simulation until it returns.
func (c *Cluster) RunMain(fn func(p *Proc) error) error {
	var appErr error
	c.Eng.Spawn("vh-main", func(p *simtime.Proc) {
		appErr = fn(p)
		c.Eng.Stop()
	})
	runErr := c.Eng.Run()
	c.Eng.Shutdown()
	if appErr != nil {
		return appErr
	}
	return runErr
}

// Now returns the cluster's simulated clock.
func (c *Cluster) Now() Duration { return Duration(c.Eng.Now()) }

// VENodes returns the application node ids of every VE in the cluster —
// machine-major, 1..N, matching ConnectCluster's numbering — the natural
// node set for a cluster-wide sched.Scheduler. veLimit mirrors
// ProtocolOptions.VEs: it caps the VEs counted per machine (<= 0 = all).
func (c *Cluster) VENodes(veLimit int) []core.NodeID {
	var nodes []core.NodeID
	next := core.NodeID(1)
	for _, m := range c.Nodes {
		n := len(m.Cards)
		if veLimit > 0 && veLimit < n {
			n = veLimit
		}
		for i := 0; i < n; i++ {
			nodes = append(nodes, next)
			next++
		}
	}
	return nodes
}

// ConnectCluster sets up HAM-Offload across the whole cluster: machine 0's
// VH is node 0; every machine's VEs follow machine-major as nodes 1..N.
// Local VEs use the DMA protocol directly; remote VEs are reached over
// InfiniBand through a proxy rank on their machine's VH.
func ConnectCluster(p *Proc, c *Cluster, opts ProtocolOptions) (*core.Runtime, error) {
	cards := make([][]*veos.Card, len(c.Nodes))
	for i, m := range c.Nodes {
		cards[i] = opts.cards(m)
	}
	b, err := mpib.Connect(p, c.Eng, c.IB, cards, mpib.Options{
		Local: dmab.Options{
			NumBuffers:     opts.NumBuffers,
			BufSize:        opts.BufSize,
			ResultInline:   opts.ResultInline,
			ResultViaDMA:   opts.ResultViaDMA,
			OffloadTimeout: opts.OffloadTimeout,
		},
	})
	if err != nil {
		return nil, err
	}
	rt := core.NewRuntime(b, "x86_64-vh-cluster")
	rt.SetTracer(c.Nodes[0].Timing.Tracer.Node(0, "mpib", p))
	rt.SetTelemetry(c.Nodes[0].Timing.Telemetry, p)
	rt.SetFaultTolerance(opts.Retry)
	rt.SetBatching(opts.Batch)
	rt.SetHedging(opts.Hedge)
	rt.SetRetryBudget(opts.RetryBudget)
	return rt, nil
}
