// Package machine assembles simulated NEC SX-Aurora TSUBASA systems and
// wires HAM-Offload applications onto them. It is the public entry point for
// running offload programs against the simulated A300-8: create a Machine,
// run the host program as a simulated process, and connect to the Vector
// Engines through either of the paper's two protocols.
//
//	m, _ := machine.New(machine.Config{VEs: 1})
//	err := m.RunMain(func(p *machine.Proc) error {
//	    rt, _ := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
//	    defer rt.Finalize()
//	    // offload.Allocate / Put / Async / ...
//	    return nil
//	})
package machine

import (
	"fmt"

	"hamoffload/internal/backend/dmab"
	"hamoffload/internal/backend/veob"
	"hamoffload/internal/core"
	"hamoffload/internal/dma"
	"hamoffload/internal/faults"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
	"hamoffload/internal/veos"
)

// Proc is a simulated process; the host program receives one and passes it
// to every blocking machine operation.
type Proc = simtime.Proc

// Duration is simulated time in picoseconds.
type Duration = simtime.Duration

// Common durations for configuring and measuring simulated time.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// Config selects the simulated system and its operating parameters.
type Config struct {
	// VEs is the number of Vector Engine cards to attach (1..8, default 1).
	VEs int
	// Socket pins the VH process (0 or 1, default 0). Offloading from
	// socket 1 to VE 0 crosses the UPI link (§V-A).
	Socket int
	// HugePages uses 2 MiB host pages for DMA translation when true
	// (the default, as the paper requires for peak bandwidth); false uses
	// 4 KiB pages.
	HugePages *bool
	// NaiveDMAManager disables the VEOS 1.3.2-4dma bulk translation,
	// reverting to per-page translation (the A3 ablation).
	NaiveDMAManager bool
	// HostMemoryBytes sizes the VH heap (default 8 GiB of address space;
	// memory is lazily backed).
	HostMemoryBytes int64
	// VEMemoryBytes sizes each VE's HBM (default the Type 10B's 48 GiB).
	VEMemoryBytes int64
	// Timing overrides the calibrated cost model; nil uses DefaultTiming.
	Timing *topology.Timing
	// Faults installs a deterministic fault-injection plan on the machine's
	// substrate (DMA engines, PCIe links, VEOS). Nil — the default — means
	// no injection and zero overhead; see internal/faults and docs/FAULTS.md.
	Faults *faults.Plan
	// Telemetry attaches a continuous-telemetry collector shared by every
	// HAM runtime on the machine (host and VE sides), so time series, SLO
	// accounting and causal flows cover the whole application. Nil — the
	// default — records nothing; see internal/telemetry and docs/TELEMETRY.md.
	Telemetry *telemetry.Collector
}

// Machine is one simulated SX-Aurora node: engine, fabric, host memory and
// VE cards.
type Machine struct {
	Eng    *simtime.Engine
	Sys    *topology.System
	Timing topology.Timing
	Fabric *pcie.Fabric
	Host   *hostmem.Host
	Cards  []*veos.Card
	Socket int
}

// New builds a simulated A300-8 with cfg's parameters.
func New(cfg Config) (*Machine, error) {
	return newWithEngine(simtime.NewEngine(), "", cfg)
}

// newWithEngine builds a machine on an existing engine; prefix distinguishes
// the memories of cluster nodes in diagnostics.
func newWithEngine(eng *simtime.Engine, prefix string, cfg Config) (*Machine, error) {
	if cfg.VEs == 0 {
		cfg.VEs = 1
	}
	sys := topology.A300_8()
	if cfg.VEs < 1 || cfg.VEs > len(sys.VEs) {
		return nil, fmt.Errorf("machine: VEs must be 1..%d, got %d", len(sys.VEs), cfg.VEs)
	}
	if cfg.Socket < 0 || cfg.Socket >= len(sys.Sockets) {
		return nil, fmt.Errorf("machine: socket must be 0..%d, got %d", len(sys.Sockets)-1, cfg.Socket)
	}
	timing := topology.DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	if cfg.HugePages != nil && !*cfg.HugePages {
		timing.HostPageSize = 4 * units.KiB
	}
	if cfg.Faults != nil {
		timing.Faults = faults.New(cfg.Faults)
	}
	if cfg.Telemetry != nil {
		timing.Telemetry = cfg.Telemetry
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	hostBytes := cfg.HostMemoryBytes
	if hostBytes == 0 {
		hostBytes = (8 * units.GiB).Int64()
	}
	veBytes := cfg.VEMemoryBytes
	if veBytes == 0 {
		veBytes = sys.VEs[0].Spec.MaxMemory.Int64()
	}
	mode := dma.TranslateBulk4DMA
	if cfg.NaiveDMAManager {
		mode = dma.TranslateNaive
	}

	fab, err := pcie.NewFabric(eng, sys, timing)
	if err != nil {
		return nil, err
	}
	host, err := hostmem.New(prefix+"vh", units.Bytes(hostBytes), timing.HostPageSize)
	if err != nil {
		return nil, err
	}
	m := &Machine{Eng: eng, Sys: sys, Timing: timing, Fabric: fab, Host: host, Socket: cfg.Socket}
	for i := 0; i < cfg.VEs; i++ {
		veMem, err := vemem.New(fmt.Sprintf("%sve%d", prefix, i), units.Bytes(veBytes))
		if err != nil {
			return nil, err
		}
		path, err := fab.PathFrom(cfg.Socket, i)
		if err != nil {
			return nil, err
		}
		m.Cards = append(m.Cards, veos.NewCard(eng, i, timing, host, veMem, path, mode))
	}
	return m, nil
}

// RunMain runs fn as the VH program process and drives the simulation until
// it returns (or the simulation errors). It returns fn's error, or the
// engine's.
func (m *Machine) RunMain(fn func(p *Proc) error) error {
	var appErr error
	m.Eng.Spawn("vh-main", func(p *simtime.Proc) {
		appErr = fn(p)
		m.Eng.Stop()
	})
	runErr := m.Eng.Run()
	m.Eng.Shutdown()
	if appErr != nil {
		return appErr
	}
	return runErr
}

// Now returns the machine's simulated clock.
func (m *Machine) Now() Duration { return Duration(m.Eng.Now()) }

// ProtocolOptions configures a HAM-Offload connection to the machine's VEs.
type ProtocolOptions struct {
	// NumBuffers is the number of message slots per direction (default 8).
	NumBuffers int
	// BufSize is the capacity of one message buffer (default 4 KiB).
	BufSize int
	// ResultInline is the inline result capacity per slot (default 248).
	ResultInline int
	// ResultViaDMA makes the DMA protocol return results through a user-DMA
	// write instead of SHM word stores (an ablation; default false = SHM,
	// which the paper found faster for small messages).
	ResultViaDMA bool
	// VEs limits the connection to the machine's first n cards (default all).
	VEs int
	// OffloadTimeout bounds the simulated wait for any single offload
	// attempt; past it, the future fails with core.ErrOffloadTimeout. The
	// default 0 waits forever (the pre-fault-tolerance behaviour).
	OffloadTimeout Duration
	// Retry is the runtime's policy for transient offload failures. The
	// zero value disables retries and keeps the wire format bit-identical
	// to the plain protocol; see core.FaultTolerance.
	Retry core.FaultTolerance
	// Batch arms message batching on the runtime: offloads queued through
	// a Batcher (offload.AsyncBatch, sched.Map) coalesce into one wire
	// message per node, amortising the per-message protocol cost. The zero
	// value disables batching and keeps wire bytes bit-identical to the
	// plain protocol; see core.BatchPolicy.
	Batch core.BatchPolicy
	// Hedge arms hedged requests: an offload still in flight after the
	// configured simulated delay is speculatively re-issued to a second
	// healthy VE and the first settled copy wins. Requires Retry (the
	// envelope's sequence numbers make the duplicate safe); the zero value
	// disables hedging. See core.HedgePolicy.
	Hedge core.HedgePolicy
	// RetryBudget is the per-target token bucket shared by retries and
	// hedges, bounding how much extra traffic resilience machinery can aim
	// at a degraded VE. The zero value is unbudgeted; see core.RetryBudget.
	RetryBudget core.RetryBudget
}

func (o ProtocolOptions) cards(m *Machine) []*veos.Card {
	if o.VEs <= 0 || o.VEs > len(m.Cards) {
		return m.Cards
	}
	return m.Cards[:o.VEs]
}

// ConnectVEO sets up HAM-Offload over the paper's VEO protocol (§III-D):
// communication buffers in VE memory, all transfers through privileged DMA.
// It returns the host runtime; targets are nodes 1..VEs.
func ConnectVEO(p *Proc, m *Machine, opts ProtocolOptions) (*core.Runtime, error) {
	b, err := veob.Connect(p, opts.cards(m), veob.Options{
		NumBuffers:     opts.NumBuffers,
		BufSize:        opts.BufSize,
		ResultInline:   opts.ResultInline,
		OffloadTimeout: opts.OffloadTimeout,
	})
	if err != nil {
		return nil, err
	}
	rt := core.NewRuntime(b, "x86_64-vh")
	rt.SetTracer(m.Timing.Tracer.Node(0, "veob", p))
	rt.SetTelemetry(m.Timing.Telemetry, p)
	rt.SetFaultTolerance(opts.Retry)
	rt.SetBatching(opts.Batch)
	rt.SetHedging(opts.Hedge)
	rt.SetRetryBudget(opts.RetryBudget)
	return rt, nil
}

// ConnectDMA sets up HAM-Offload over the paper's DMA protocol (§IV-B):
// communication buffers in a VH shared-memory segment, VE-initiated LHM
// polls, user-DMA message fetches and SHM result stores.
func ConnectDMA(p *Proc, m *Machine, opts ProtocolOptions) (*core.Runtime, error) {
	b, err := dmab.Connect(p, opts.cards(m), dmab.Options{
		NumBuffers:     opts.NumBuffers,
		BufSize:        opts.BufSize,
		ResultInline:   opts.ResultInline,
		ResultViaDMA:   opts.ResultViaDMA,
		OffloadTimeout: opts.OffloadTimeout,
	})
	if err != nil {
		return nil, err
	}
	rt := core.NewRuntime(b, "x86_64-vh")
	rt.SetTracer(m.Timing.Tracer.Node(0, "dmab", p))
	rt.SetTelemetry(m.Timing.Telemetry, p)
	rt.SetFaultTolerance(opts.Retry)
	rt.SetBatching(opts.Batch)
	rt.SetHedging(opts.Hedge)
	rt.SetRetryBudget(opts.RetryBudget)
	return rt, nil
}
