package machine_test

import (
	"strings"
	"testing"

	"hamoffload/machine"
	"hamoffload/offload"
)

var (
	clSquare = offload.NewFunc1[int64]("cluster.square",
		func(c *offload.Ctx, v int64) (int64, error) { return v * v, nil })

	clWhere = offload.NewFunc0[int]("cluster.where",
		func(c *offload.Ctx) (int, error) { return int(c.Node()), nil })

	clSum = offload.NewFunc1[float64]("cluster.sum",
		func(c *offload.Ctx, b offload.BufferPtr[float64]) (float64, error) {
			v, err := offload.ReadLocal(c, b, 0, b.Count)
			if err != nil {
				return 0, err
			}
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s, nil
		})
)

// TestClusterRemoteOffload exercises the §VI outlook: offloading to VEs on a
// remote machine over InfiniBand, with unchanged application code.
func TestClusterRemoteOffload(t *testing.T) {
	c, err := machine.NewCluster(2, machine.Config{VEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, c, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		// 1 host + 2 machines × 2 VEs.
		if rt.NumNodes() != 5 {
			t.Errorf("NumNodes = %d, want 5", rt.NumNodes())
		}
		// Nodes 1,2 local; 3,4 remote. The same functor works on all.
		for node := 1; node <= 4; node++ {
			v, err := offload.Sync(rt, offload.NodeID(node), clSquare.Bind(int64(node+10)))
			if err != nil {
				return err
			}
			if v != int64((node+10)*(node+10)) {
				t.Errorf("node %d: square = %d", node, v)
			}
			w, err := offload.Sync(rt, offload.NodeID(node), clWhere.Bind())
			if err != nil {
				return err
			}
			if w != node {
				t.Errorf("node %d reports itself as %d", node, w)
			}
		}
		// Descriptors identify machines.
		if d := rt.GetNodeDescriptor(3); !strings.Contains(d.Device, "machine 1") {
			t.Errorf("remote descriptor = %+v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterRemoteDataPath moves data to a remote VE with put, reduces it
// there, and reads it back with get — all staged over IB.
func TestClusterRemoteDataPath(t *testing.T) {
	c, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, c, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		remote := offload.NodeID(2) // machine 1's VE

		const n = 4096
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = float64(i % 17)
			want += vals[i]
		}
		buf, err := offload.Allocate[float64](rt, remote, n)
		if err != nil {
			return err
		}
		if err := offload.Put(rt, vals, buf); err != nil {
			return err
		}
		got, err := offload.Sync(rt, remote, clSum.Bind(buf))
		if err != nil {
			return err
		}
		if got != want {
			t.Errorf("remote sum = %v, want %v", got, want)
		}
		back := make([]float64, n)
		if err := offload.Get(rt, buf, back); err != nil {
			return err
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("remote get mismatch at %d", i)
			}
		}
		return offload.Free(rt, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterRemoteCostsMoreThanLocal verifies the latency hierarchy: a
// remote offload pays the IB round trip plus proxy forwarding on top of the
// local DMA-protocol cost.
func TestClusterRemoteCostsMoreThanLocal(t *testing.T) {
	c, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, c, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		measure := func(node offload.NodeID) float64 {
			for i := 0; i < 10; i++ {
				if _, err := offload.Sync(rt, node, clSquare.Bind(1)); err != nil {
					t.Fatal(err)
				}
			}
			start := c.Now()
			const reps = 50
			for i := 0; i < reps; i++ {
				if _, err := offload.Sync(rt, node, clSquare.Bind(1)); err != nil {
					t.Fatal(err)
				}
			}
			return (c.Now() - start).Microseconds() / reps
		}
		local := measure(1)
		remote := measure(2)
		if local < 5 || local > 8 {
			t.Errorf("local offload = %.2f us, want ≈6", local)
		}
		// Remote adds two IB messages (~2 µs each) plus proxy progress.
		if remote < local+3 || remote > local+25 {
			t.Errorf("remote offload = %.2f us vs local %.2f us", remote, local)
		}
		t.Logf("local=%.2fus remote=%.2fus", local, remote)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterAsyncFanOut keeps every VE of both machines busy at once.
func TestClusterAsyncFanOut(t *testing.T) {
	c, err := machine.NewCluster(2, machine.Config{VEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, c, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		var futs []*offload.Future[int64]
		for node := 1; node <= 8; node++ {
			futs = append(futs, offload.Async(rt, offload.NodeID(node), clSquare.Bind(int64(node))))
		}
		for i, f := range futs {
			v, err := f.Get()
			if err != nil {
				return err
			}
			if v != int64((i+1)*(i+1)) {
				t.Errorf("fan-out %d = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := machine.NewCluster(1, machine.Config{}); err == nil {
		t.Error("single-node cluster accepted")
	}
	if _, err := machine.NewCluster(2, machine.Config{VEs: 99}); err == nil {
		t.Error("bad per-node config accepted")
	}
}
