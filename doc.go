// Package hamoffload is a Go reproduction of "Heterogeneous Active Messages
// for Offloading on the NEC SX-Aurora TSUBASA" (Noack, Focht, Steinke;
// IPDPS Workshops / HCW 2019).
//
// It contains a full port of the HAM/HAM-Offload programming model to Go
// (packages offload and internal/ham, internal/core), the paper's two
// SX-Aurora messaging protocols (internal/backend/veob and
// internal/backend/dmab), a portable TCP/IP backend
// (internal/backend/tcpb), and — because no Vector Engine hardware or Go
// toolchain for it exists — a calibrated discrete-event simulation of the
// whole SX-Aurora A300-8 platform (machine and the internal substrate
// packages) that reproduces the paper's measured behaviour.
//
// See README.md for a tour, DESIGN.md for the architecture and substitution
// rationale, and EXPERIMENTS.md for the paper-vs-measured numbers. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/hambench prints them in paper-style form.
package hamoffload
