# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check test race bench bench-check gobench repro examples fmt vet lint cover cover-check shuffle

all: check

# The full gate: static analysis plus the test suite under the race
# detector (the wall-clock backends and the span tracer are concurrent).
check: vet lint race

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Shuffled test order: inter-test state leaks (shared package globals, leaked
# goroutines, order-dependent registries) surface as flakes here first.
shuffle:
	$(GO) test -shuffle=on ./...

# Benchmark-regression harness: rerun the Fig. 9 and batch experiments and
# refresh the committed BENCH_fig9.json / BENCH_batch.json baselines.
bench:
	$(GO) run ./cmd/benchreg

# Verify a fresh run against the committed baselines. Simulated time is
# deterministic, so CI demands bit-exact reproduction (-tol 0); use
# `go run ./cmd/benchreg -check -tol 0.05` manually for a looser gate.
bench-check:
	$(GO) run ./cmd/benchreg -check -tol 0

gobench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artefact (Fig. 9, Fig. 10, Table IV, ablations).
repro:
	$(GO) run ./cmd/veinfo
	$(GO) run ./cmd/hambench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/cg
	$(GO) run ./examples/halo
	$(GO) run ./examples/overlap
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/cluster
	$(GO) run ./examples/tcpcluster

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Repository-specific invariants (DES clock, span nesting, deterministic
# output, unit types) — see docs/LINTING.md.
lint:
	$(GO) run ./cmd/hamlint ./...

cover:
	$(GO) test -cover ./...

# Coverage-regression harness: fail if the guarded packages (gateway, sched,
# internal/core) fall below the floors recorded in COVER_baseline.txt.
# Refresh the floors with `go run ./cmd/coverreg`.
cover-check:
	$(GO) run ./cmd/coverreg -check
