# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check test race bench repro examples fmt vet lint cover

all: check

# The full gate: static analysis plus the test suite under the race
# detector (the wall-clock backends and the span tracer are concurrent).
check: vet lint race

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artefact (Fig. 9, Fig. 10, Table IV, ablations).
repro:
	$(GO) run ./cmd/veinfo
	$(GO) run ./cmd/hambench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/cg
	$(GO) run ./examples/halo
	$(GO) run ./examples/overlap
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/cluster
	$(GO) run ./examples/tcpcluster

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Repository-specific invariants (DES clock, span nesting, deterministic
# output, unit types) — see docs/LINTING.md.
lint:
	$(GO) run ./cmd/hamlint ./...

cover:
	$(GO) test -cover ./...
