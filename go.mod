module hamoffload

go 1.24
