// Command hambench regenerates the paper's evaluation artefacts from the
// simulated SX-Aurora machine:
//
//	hambench -exp fig9                offload cost, three systems (Fig. 9)
//	hambench -exp fig9 -socket 1      §V-A second-socket variant
//	hambench -exp breakdown           per-phase split of one offload (Fig. 9 text)
//	hambench -exp fig10               bandwidth sweep, four panels (Fig. 10)
//	hambench -exp table4              max bandwidths (Table IV)
//	hambench -exp crossover           §V-B crossover points
//	hambench -exp ablate-hugepages    huge-page / DMA-manager ablation
//	hambench -exp ablate-4dma         naive vs 4dma bulk translation
//	hambench -exp ablate-poll         VE poll-interval sweep
//	hambench -exp ablate-buffers      message-slot count sweep
//	hambench -exp ablate-result-path  SHM vs DMA result return
//	hambench -exp ablate-granularity  protocol gap vs kernel duration
//	hambench -exp native-vs-offload   §I: native VE execution vs offloading
//	hambench -exp remote              §VI outlook: offloading over InfiniBand
//	hambench -exp putget              public-API data path vs Fig. 10 curves
//	hambench -exp faults              fault-tolerance overhead on the Fig. 9 path
//	hambench -exp batch               batched-message amortisation vs Fig. 9 baseline
//	hambench -exp resilience          gray-failure tail latency: hedging + circuit breakers
//	hambench -exp telemetry           continuous telemetry: sparklines, SLO table, causal flows
//	hambench -exp serving             million-offload serving gateway: QoS, quotas, stealing
//	hambench -exp all                 everything above
//
// Additional flags: -hist prints per-offload latency histograms with fig9;
// -chrome FILE writes a Chrome/Perfetto trace of both protocols; -trace FILE
// records the fig9/breakdown runs with full lifecycle tracing and writes the
// spans as Chrome trace-event JSON (load in Perfetto or chrome://tracing);
// -flows FILE / -folded FILE export the telemetry experiment's causal offload
// flows as Chrome trace flow events / folded flamegraph stacks.
//
// The telemetry experiment prints only simulated-clock data on stdout, so two
// runs are byte-identical (CI diffs them); the wall-clock engine profile goes
// to stderr.
//
// All numbers are simulated time from the calibrated machine model, so they
// are deterministic and reproducible.
package main

import (
	"flag"
	"fmt"
	"os"

	"hamoffload/bench"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
	"hamoffload/internal/units"
)

// experiments lists every valid -exp name, in the order the runs are
// registered below. An unknown name is an error that prints this list —
// silently running nothing buries typos.
var experiments = []string{
	"fig9", "breakdown", "fig10", "table4", "crossover",
	"ablate-hugepages", "ablate-4dma", "ablate-poll", "ablate-buffers",
	"ablate-granularity", "remote", "putget", "native-vs-offload",
	"faults", "batch", "resilience", "telemetry", "serving",
	"ablate-result-path",
}

func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig9, breakdown, fig10, table4, crossover, ablate-{hugepages,4dma,poll,buffers,result-path,granularity}, native-vs-offload, remote, putget, faults, batch, resilience, telemetry, serving, all)")
	socket := flag.Int("socket", 0, "VH socket to offload from (fig9)")
	reps := flag.Int("reps", 0, "timed repetitions per point (0 = defaults)")
	maxSize := flag.Int64("max-size", (256 * units.MiB).Int64(), "largest transfer size for sweeps")
	csvPath := flag.String("csv", "", "write the fig10 sweep as CSV to this file")
	plot := flag.Bool("plot", true, "render ASCII plots for fig10")
	hist := flag.Bool("hist", false, "also print per-offload latency histograms for fig9")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON of a few offloads per protocol to this file")
	tracePath := flag.String("trace", "", "record fig9/breakdown with lifecycle tracing and write Chrome trace-event JSON to this file")
	flowsPath := flag.String("flows", "", "write the telemetry experiment's causal flows as Chrome trace-event JSON to this file")
	foldedPath := flag.String("folded", "", "write the telemetry experiment's causal flows as folded flamegraph stacks to this file")
	flag.Parse()

	if !knownExperiment(*exp) {
		fmt.Fprintf(os.Stderr, "hambench: unknown experiment %q; valid names:\n  all\n", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		os.Exit(2)
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.NewTracer()
	}
	writeTrace := func() {
		if tracer == nil || tracer.Len() == 0 {
			return
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hambench:", err)
			os.Exit(1)
		}
		if err := tracer.ExportChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "hambench: trace:", err)
			os.Exit(1)
		}
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "hambench: wrote", *tracePath)
	}
	defer writeTrace()

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hambench:", err)
			os.Exit(1)
		}
		if err := bench.TraceOffloads(5, f); err != nil {
			fmt.Fprintln(os.Stderr, "hambench: trace:", err)
			os.Exit(1)
		}
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "hambench: wrote", *chrome)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "hambench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	var sweep []bench.Series // shared between fig10 / table4 / crossover
	ensureSweep := func() error {
		if sweep != nil {
			return nil
		}
		fmt.Fprintln(os.Stderr, "hambench: running bandwidth sweep (up to",
			units.Bytes(*maxSize).String(), ")...")
		var err error
		sweep, err = bench.Fig10(bench.Fig10Config{
			Socket:  *socket,
			MaxSize: *maxSize,
			Reps:    *reps,
		})
		return err
	}

	run("fig9", func() error {
		r, err := bench.Fig9(bench.Fig9Config{Socket: *socket, Reps: *reps, Tracer: tracer})
		if err != nil {
			return err
		}
		bench.RenderFig9(os.Stdout, r)
		if *hist {
			for _, dma := range []bool{false, true} {
				h, err := bench.MeasureHAMEmptyHist(
					bench.Fig9Config{Socket: *socket, Reps: *reps}, dma)
				if err != nil {
					return err
				}
				fmt.Println()
				h.Render(os.Stdout)
			}
		}
		return nil
	})

	run("breakdown", func() error {
		cfg := bench.Fig9Config{Socket: *socket, Reps: *reps, Tracer: tracer}
		if cfg.Tracer == nil {
			cfg.Tracer = trace.NewTracer()
		}
		res, err := bench.Breakdown(cfg, true)
		if err != nil {
			return err
		}
		bench.RenderBreakdown(os.Stdout, res)
		fmt.Println()
		fmt.Println("Per-node metrics registries")
		for _, reg := range cfg.Tracer.Registries() {
			reg.Render(os.Stdout)
		}
		return nil
	})

	run("fig10", func() error {
		if err := ensureSweep(); err != nil {
			return err
		}
		bench.RenderFig10(os.Stdout, sweep, 1024)
		if *plot {
			bench.RenderASCIIPlot(os.Stdout, sweep, bench.DirDown)
			bench.RenderASCIIPlot(os.Stdout, sweep, bench.DirUp)
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteCSV(f, sweep); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "hambench: wrote", *csvPath)
		}
		return nil
	})

	run("table4", func() error {
		if err := ensureSweep(); err != nil {
			return err
		}
		bench.RenderTableIV(os.Stdout, bench.TableIV(sweep))
		return nil
	})

	run("crossover", func() error {
		if err := ensureSweep(); err != nil {
			return err
		}
		find := func(method, dir string) bench.Series {
			for _, s := range sweep {
				if s.Method == method && s.Direction == dir {
					return s
				}
			}
			return bench.Series{}
		}
		shm := find(bench.MethodInst, bench.DirUp)
		dma := find(bench.MethodDMA, bench.DirUp)
		veo := find(bench.MethodVEO, bench.DirUp)
		fmt.Println("Crossover points, VE=>VH direction (§V-B)")
		fmt.Printf("SHM faster than VE user DMA up to : %8s   (paper: 256B)\n",
			units.Bytes(bench.Crossover(shm, dma)).String())
		fmt.Printf("SHM faster than VEO read up to    : %8s   (paper: 32KiB; see EXPERIMENTS.md)\n",
			units.Bytes(bench.Crossover(shm, veo)).String())
		return nil
	})

	run("ablate-hugepages", func() error {
		rows, err := bench.AblateHugePages(64 * units.MiB.Int64())
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "A2 — host page size x DMA manager (VEO write bandwidth)", rows)
		return nil
	})

	run("ablate-4dma", func() error {
		rows, err := bench.AblateHugePages(64 * units.MiB.Int64())
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "A3 — VEOS 1.3.2-4dma bulk translation vs naive", rows)
		return nil
	})

	run("ablate-poll", func() error {
		rows, err := bench.AblatePollInterval(nil)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "Ablation — VE receive-flag poll interval (DMA protocol)", rows)
		return nil
	})

	run("ablate-buffers", func() error {
		rows, err := bench.AblateBufferCount(nil, 32)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "Ablation — message-buffer count (async pipeline)", rows)
		return nil
	})

	run("ablate-granularity", func() error {
		rows, err := bench.AblateGranularity(nil)
		if err != nil {
			return err
		}
		bench.RenderGranularity(os.Stdout, rows)
		return nil
	})

	run("remote", func() error {
		r, err := bench.Remote(*reps)
		if err != nil {
			return err
		}
		bench.RenderRemote(os.Stdout, r)
		return nil
	})

	run("putget", func() error {
		pts, err := bench.PutGet(nil, *reps)
		if err != nil {
			return err
		}
		bench.RenderPutGet(os.Stdout, pts)
		return nil
	})

	run("native-vs-offload", func() error {
		rows, err := bench.NativeVsOffload(bench.NativeVsOffloadConfig{})
		if err != nil {
			return err
		}
		bench.RenderNativeVsOffload(os.Stdout, rows)
		return nil
	})

	run("faults", func() error {
		rows, err := bench.FaultOverhead(*reps)
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "Fault tolerance — empty-offload cost (Fig. 9 path)", rows)
		return nil
	})

	run("batch", func() error {
		r, err := bench.Batch(bench.BatchConfig{Socket: *socket, Reps: *reps})
		if err != nil {
			return err
		}
		bench.RenderBatch(os.Stdout, r)
		return nil
	})

	run("resilience", func() error {
		res, err := bench.Resilience(bench.ResilienceConfig{Offloads: *reps})
		if err != nil {
			return err
		}
		bench.RenderResilience(os.Stdout, res)
		return nil
	})

	run("telemetry", func() error {
		res, err := bench.Telemetry(bench.TelemetryConfig{})
		if err != nil {
			return err
		}
		bench.RenderTelemetry(os.Stdout, res)
		// The wall-clock half of the engine profile is machine-dependent,
		// so it goes to stderr and stays out of CI's byte comparison.
		telemetry.RenderEngineStats(os.Stderr, res.Engine)
		export := func(path string, f func(*os.File) error) error {
			if path == "" {
				return nil
			}
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f(out); err != nil {
				_ = out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "hambench: wrote", path)
			return nil
		}
		if err := export(*flowsPath, func(f *os.File) error {
			return res.Collector.ExportChromeFlows(f)
		}); err != nil {
			return err
		}
		return export(*foldedPath, func(f *os.File) error {
			return res.Collector.ExportFolded(f)
		})
	})

	run("serving", func() error {
		res, err := bench.Serving(bench.ServingConfig{Offloads: *reps, Tracer: tracer})
		if err != nil {
			return err
		}
		bench.RenderServing(os.Stdout, res)
		return nil
	})

	run("ablate-result-path", func() error {
		rows, err := bench.AblateResultPath()
		if err != nil {
			return err
		}
		bench.RenderAblation(os.Stdout, "Ablation — result return path (DMA protocol)", rows)
		return nil
	})
}
