// Command benchreg is the benchmark-regression harness. It runs the Fig. 9
// and batch experiments with per-operation sampling and either refreshes the
// committed JSON baselines or verifies a fresh run against them:
//
//	benchreg                 rerun and (re)write BENCH_fig9.json, BENCH_batch.json,
//	                         BENCH_resilience.json, BENCH_serving.json, BENCH_engine.json
//	benchreg -check          rerun and fail if any stat regresses beyond -tol
//	benchreg -check -tol 0   demand bit-exact reproduction (simulated time is
//	                         deterministic, so this holds on an unchanged tree)
//
// In both modes it also enforces three design targets: a 16-message batch's
// amortised per-message empty-offload cost must stay at or below half the
// single-message DMA-protocol cost (see docs/BATCHING.md); with one of
// two VEs degraded 10x, hedging plus health-aware scheduling must recover
// at least 2x of the baseline's p99.9 offload latency (see docs/FAULTS.md);
// and on the million-offload serving sweep, latency-critical traffic must
// keep a p99 at or below half the best-effort p99 on the same saturated
// fleet (see docs/SERVING.md).
//
// BENCH_engine.json is the DES engine's own profile over the telemetry
// workload. Its simulated-clock fields (event count, final time, queue
// depth) are compared exactly regardless of -tol; its wall-clock fields pass
// through fixed sanity gates only, because they depend on the host.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hamoffload/bench"
)

const (
	amortisationGate = 0.5 // batch-16 per-msg mean <= 50% of single-dma mean
	resilienceGate   = 2.0 // baseline p99.9 / hedged-breaker p99.9 >= 2x
	servingGate      = 0.5 // latency-critical p99 <= 50% of best-effort p99
)

func main() {
	check := flag.Bool("check", false, "compare against the committed baselines instead of rewriting them")
	tol := flag.Float64("tol", 0.05, "allowed relative regression per stat in -check mode (0.05 = 5%)")
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json baselines")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchreg: "+format+"\n", args...)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreg: running fig9 experiment...")
	fig9, err := bench.Fig9Report(bench.Fig9Config{})
	if err != nil {
		fail("fig9: %v", err)
	}
	fmt.Fprintln(os.Stderr, "benchreg: running batch experiment...")
	batch, err := bench.BatchReport(bench.BatchConfig{})
	if err != nil {
		fail("batch: %v", err)
	}
	fmt.Fprintln(os.Stderr, "benchreg: running resilience experiment...")
	resilience, err := bench.ResilienceReport(bench.ResilienceConfig{})
	if err != nil {
		fail("resilience: %v", err)
	}
	fmt.Fprintln(os.Stderr, "benchreg: running serving experiment (10^6 offloads)...")
	serving, err := bench.ServingReport(bench.ServingConfig{})
	if err != nil {
		fail("serving: %v", err)
	}
	fmt.Fprintln(os.Stderr, "benchreg: profiling the DES engine on the telemetry workload...")
	engine, err := bench.EngineProfileReport(bench.TelemetryConfig{})
	if err != nil {
		fail("engine: %v", err)
	}

	// The design target is checked in every mode: refreshing a baseline that
	// violates it should be just as loud as regressing against one.
	single, ok1 := batch.Entry("single-dma")
	b16, ok2 := batch.Entry("batch-16-per-msg")
	if !ok1 || !ok2 {
		fail("batch report is missing single-dma or batch-16-per-msg")
	}
	ratio := b16.MeanUS / single.MeanUS
	fmt.Fprintf(os.Stderr, "benchreg: batch-16 per-msg %.2f us vs single %.2f us (ratio %.2f, gate %.2f)\n",
		b16.MeanUS, single.MeanUS, ratio, amortisationGate)
	if ratio > amortisationGate {
		fail("amortisation gate failed: batch-16 per-msg cost is %.0f%% of single-message cost (target <= %.0f%%)",
			ratio*100, amortisationGate*100)
	}

	rbase, ok1 := resilience.Entry("baseline")
	rhb, ok2 := resilience.Entry("hedged-breaker")
	if !ok1 || !ok2 {
		fail("resilience report is missing baseline or hedged-breaker")
	}
	recovered := rbase.P999US / rhb.P999US
	fmt.Fprintf(os.Stderr, "benchreg: gray-failure p99.9 baseline %.2f us vs hedged-breaker %.2f us (recovered %.2fx, gate %.2fx)\n",
		rbase.P999US, rhb.P999US, recovered, resilienceGate)
	if recovered < resilienceGate {
		fail("resilience gate failed: hedging + health-aware scheduling recovered %.2fx of baseline p99.9 (target >= %.2fx)",
			recovered, resilienceGate)
	}

	slc, ok1 := serving.Entry("latency-critical")
	sbe, ok2 := serving.Entry("best-effort")
	if !ok1 || !ok2 {
		fail("serving report is missing latency-critical or best-effort")
	}
	qos := slc.P99US / sbe.P99US
	fmt.Fprintf(os.Stderr, "benchreg: serving p99 latency-critical %.2f us vs best-effort %.2f us (ratio %.2f, gate %.2f)\n",
		slc.P99US, sbe.P99US, qos, servingGate)
	if qos > servingGate {
		fail("serving QoS gate failed: latency-critical p99 is %.0f%% of best-effort p99 (target <= %.0f%%)",
			qos*100, servingGate*100)
	}

	reports := []struct {
		path string
		rep  bench.Report
	}{
		{filepath.Join(*dir, "BENCH_fig9.json"), fig9},
		{filepath.Join(*dir, "BENCH_batch.json"), batch},
		{filepath.Join(*dir, "BENCH_resilience.json"), resilience},
		{filepath.Join(*dir, "BENCH_serving.json"), serving},
	}

	enginePath := filepath.Join(*dir, "BENCH_engine.json")

	if !*check {
		for _, r := range reports {
			if err := bench.WriteReport(r.path, r.rep); err != nil {
				fail("%v", err)
			}
			fmt.Fprintln(os.Stderr, "benchreg: wrote", r.path)
		}
		if err := bench.WriteEngineReport(enginePath, engine); err != nil {
			fail("%v", err)
		}
		fmt.Fprintln(os.Stderr, "benchreg: wrote", enginePath)
		return
	}

	bad := 0
	for _, r := range reports {
		base, err := bench.ReadReport(r.path)
		if err != nil {
			fail("no baseline %s (run benchreg without -check to create it): %v", r.path, err)
		}
		for _, line := range bench.CompareReports(base, r.rep, *tol) {
			fmt.Fprintln(os.Stderr, "benchreg:", line)
			bad++
		}
	}
	engineBase, err := bench.ReadEngineReport(enginePath)
	if err != nil {
		fail("no baseline %s (run benchreg without -check to create it): %v", enginePath, err)
	}
	for _, line := range bench.CompareEngineReports(engineBase, engine) {
		fmt.Fprintln(os.Stderr, "benchreg:", line)
		bad++
	}
	if bad > 0 {
		fail("%d stat(s) regressed beyond tolerance", bad)
	}
	fmt.Fprintln(os.Stderr, "benchreg: baselines hold")
}
