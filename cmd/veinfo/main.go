// Command veinfo prints the simulated benchmark system's configuration: the
// processor specifications of Table I and the system/software configuration
// of Table III of the paper. With -json the same machine description is
// emitted as a single JSON document for tooling, extended with a
// "telemetry" section: per-node counters, span statistics and latency
// histogram quantiles (p50/p99/p99.9) from a short traced offload probe on
// a one-VE machine. The probe runs on the simulated clock, so the section
// is deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/internal/units"
	"hamoffload/machine"
	"hamoffload/offload"
)

func main() {
	table1 := flag.Bool("table1", true, "print Table I (processor specifications)")
	table3 := flag.Bool("table3", true, "print Table III (benchmark system configuration)")
	asJSON := flag.Bool("json", false, "emit both tables as one JSON document instead of text")
	flag.Parse()

	sys := topology.A300_8()
	if err := sys.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "veinfo:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := printJSON(sys); err != nil {
			fmt.Fprintln(os.Stderr, "veinfo:", err)
			os.Exit(1)
		}
		return
	}
	if *table1 {
		printTable1(sys)
	}
	if *table3 {
		if *table1 {
			fmt.Println()
		}
		printTable3(sys)
	}
}

func printTable1(sys *topology.System) {
	cpu := sys.Sockets[0].CPU
	ve := sys.VEs[0].Spec
	fmt.Println("Table I — Specifications of a single VH CPU and Vector Engine")
	row := func(name, a, b string) { fmt.Printf("%-24s %-22s %-22s\n", name, a, b) }
	row("", cpu.Model, ve.Model)
	row("Cores", itoa(cpu.Cores), itoa(ve.Cores))
	row("Threads", itoa(cpu.Threads), itoa(ve.Threads))
	row("Vector Width (double)", itoa(cpu.VectorWidthF64), itoa(ve.VectorWidthF64))
	row("Clock Frequency", ghz(cpu.ClockGHz), ghz(ve.ClockGHz))
	row("Peak Performance", gflops(cpu.PeakGFLOPS), gflops(ve.PeakGFLOPS))
	row("Max. Memory", cpu.MaxMemory.String()+" (DDR4)", ve.MaxMemory.String()+" (HBM2)")
	row("Memory Bandwidth", gbs(cpu.MemoryBandwidth), gbs(ve.MemoryBandwidth))
	row("L3/LLC", cpu.LastLevelCache.String(), ve.LastLevelCache.String())
	row("TDP", watts(cpu.TDPWatts), watts(ve.TDPWatts))
}

func printTable3(sys *topology.System) {
	fmt.Println("Table III — Configuration of the benchmark system")
	row := func(name, v string) { fmt.Printf("%-14s %s\n", name, v) }
	row("System", sys.Name)
	row("VH CPUs", fmt.Sprintf("%dx %s", len(sys.Sockets), sys.Sockets[0].CPU.Model))
	row("VH Memory", sys.VHMemory.String()+" DDR4")
	row("VE Cards", fmt.Sprintf("%dx %s, %s HBM2", len(sys.VEs), sys.VEs[0].Spec.Model, sys.VEs[0].Spec.MaxMemory))
	row("PCIe Config.", fmt.Sprintf("%d switches, %d VEs per switch (Fig. 3)", len(sys.Switches), len(sys.VEs)/len(sys.Switches)))
	row("VH OS", sys.VHOS)
	row("VH compiler", sys.VHCompiler)
	row("VEOS", sys.VEOSVer)
	row("VEO", sys.VEOVer)
	row("VE compiler", sys.VECompiler)
}

// procJSON is the machine-readable form of one Table I column.
type procJSON struct {
	Model              string  `json:"model"`
	Cores              int     `json:"cores"`
	Threads            int     `json:"threads"`
	VectorWidthDouble  int     `json:"vector_width_double"`
	ClockGHz           float64 `json:"clock_ghz"`
	PeakGFLOPS         float64 `json:"peak_gflops"`
	MaxMemoryBytes     int64   `json:"max_memory_bytes"`
	MemoryBWBytesPerS  int64   `json:"memory_bandwidth_bytes_per_s"`
	LastLevelCacheByte int64   `json:"last_level_cache_bytes"`
	TDPWatts           int     `json:"tdp_watts"`
}

func toProcJSON(model string, cores, threads, vw int, ghz, gflops float64,
	mem, bw, llc units.Bytes, tdp int) procJSON {
	return procJSON{
		Model: model, Cores: cores, Threads: threads, VectorWidthDouble: vw,
		ClockGHz: ghz, PeakGFLOPS: gflops,
		MaxMemoryBytes: mem.Int64(), MemoryBWBytesPerS: bw.Int64(),
		LastLevelCacheByte: llc.Int64(), TDPWatts: tdp,
	}
}

// probeEmpty is the empty functor the telemetry probe offloads.
var probeEmpty = offload.NewFunc0[offload.Unit]("veinfo.empty",
	func(c *offload.Ctx) (offload.Unit, error) { return offload.Unit{}, nil })

// probeTelemetry runs a short traced offload probe — 32 empty sync offloads
// over the DMA protocol on a one-VE machine — and returns the per-node
// registry snapshots: counters, span stats, and the probe's offload-latency
// histogram quantiles.
func probeTelemetry() ([]trace.RegistrySnapshot, error) {
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	m, err := machine.New(machine.Config{VEs: 1, Timing: &timing})
	if err != nil {
		return nil, err
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		host := tr.Node(0, "dmab", p)
		for i := 0; i < 32; i++ {
			start := p.Now()
			if _, err := offload.Sync(rt, 1, probeEmpty.Bind()); err != nil {
				return err
			}
			host.Observe("offload-latency", p.Now().Sub(start))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr.Snapshots(), nil
}

// printJSON emits Tables I and III as one JSON document.
func printJSON(sys *topology.System) error {
	cpu := sys.Sockets[0].CPU
	ve := sys.VEs[0].Spec
	out := struct {
		System string `json:"system"`
		Table1 struct {
			VH procJSON `json:"vh_cpu"`
			VE procJSON `json:"vector_engine"`
		} `json:"table1"`
		Table3 struct {
			VHCPUs        int    `json:"vh_cpus"`
			VHMemoryBytes int64  `json:"vh_memory_bytes"`
			VECards       int    `json:"ve_cards"`
			PCIeSwitches  int    `json:"pcie_switches"`
			VEsPerSwitch  int    `json:"ves_per_switch"`
			VHOS          string `json:"vh_os"`
			VHCompiler    string `json:"vh_compiler"`
			VEOS          string `json:"veos"`
			VEO           string `json:"veo"`
			VECompiler    string `json:"ve_compiler"`
		} `json:"table3"`
		Telemetry []trace.RegistrySnapshot `json:"telemetry"`
	}{System: sys.Name}
	out.Table1.VH = toProcJSON(cpu.Model, cpu.Cores, cpu.Threads, cpu.VectorWidthF64,
		cpu.ClockGHz, cpu.PeakGFLOPS, cpu.MaxMemory, cpu.MemoryBandwidth,
		cpu.LastLevelCache, cpu.TDPWatts)
	out.Table1.VE = toProcJSON(ve.Model, ve.Cores, ve.Threads, ve.VectorWidthF64,
		ve.ClockGHz, ve.PeakGFLOPS, ve.MaxMemory, ve.MemoryBandwidth,
		ve.LastLevelCache, ve.TDPWatts)
	out.Table3.VHCPUs = len(sys.Sockets)
	out.Table3.VHMemoryBytes = sys.VHMemory.Int64()
	out.Table3.VECards = len(sys.VEs)
	out.Table3.PCIeSwitches = len(sys.Switches)
	out.Table3.VEsPerSwitch = len(sys.VEs) / len(sys.Switches)
	out.Table3.VHOS = sys.VHOS
	out.Table3.VHCompiler = sys.VHCompiler
	out.Table3.VEOS = sys.VEOSVer
	out.Table3.VEO = sys.VEOVer
	out.Table3.VECompiler = sys.VECompiler
	snaps, err := probeTelemetry()
	if err != nil {
		return err
	}
	out.Telemetry = snaps
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func itoa(v int) string        { return fmt.Sprintf("%d", v) }
func ghz(v float64) string     { return fmt.Sprintf("%.1f GHz", v) }
func gflops(v float64) string  { return fmt.Sprintf("%.1f GFLOPS", v) }
func watts(v int) string       { return fmt.Sprintf("%d W", v) }
func gbs(b units.Bytes) string { return fmt.Sprintf("%.1f GB/s", b.GBs()) }
