// Command veinfo prints the simulated benchmark system's configuration: the
// processor specifications of Table I and the system/software configuration
// of Table III of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"hamoffload/internal/topology"
	"hamoffload/internal/units"
)

func main() {
	table1 := flag.Bool("table1", true, "print Table I (processor specifications)")
	table3 := flag.Bool("table3", true, "print Table III (benchmark system configuration)")
	flag.Parse()

	sys := topology.A300_8()
	if err := sys.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "veinfo:", err)
		os.Exit(1)
	}
	if *table1 {
		printTable1(sys)
	}
	if *table3 {
		if *table1 {
			fmt.Println()
		}
		printTable3(sys)
	}
}

func printTable1(sys *topology.System) {
	cpu := sys.Sockets[0].CPU
	ve := sys.VEs[0].Spec
	fmt.Println("Table I — Specifications of a single VH CPU and Vector Engine")
	row := func(name, a, b string) { fmt.Printf("%-24s %-22s %-22s\n", name, a, b) }
	row("", cpu.Model, ve.Model)
	row("Cores", itoa(cpu.Cores), itoa(ve.Cores))
	row("Threads", itoa(cpu.Threads), itoa(ve.Threads))
	row("Vector Width (double)", itoa(cpu.VectorWidthF64), itoa(ve.VectorWidthF64))
	row("Clock Frequency", ghz(cpu.ClockGHz), ghz(ve.ClockGHz))
	row("Peak Performance", gflops(cpu.PeakGFLOPS), gflops(ve.PeakGFLOPS))
	row("Max. Memory", cpu.MaxMemory.String()+" (DDR4)", ve.MaxMemory.String()+" (HBM2)")
	row("Memory Bandwidth", gbs(cpu.MemoryBandwidth), gbs(ve.MemoryBandwidth))
	row("L3/LLC", cpu.LastLevelCache.String(), ve.LastLevelCache.String())
	row("TDP", watts(cpu.TDPWatts), watts(ve.TDPWatts))
}

func printTable3(sys *topology.System) {
	fmt.Println("Table III — Configuration of the benchmark system")
	row := func(name, v string) { fmt.Printf("%-14s %s\n", name, v) }
	row("System", sys.Name)
	row("VH CPUs", fmt.Sprintf("%dx %s", len(sys.Sockets), sys.Sockets[0].CPU.Model))
	row("VH Memory", sys.VHMemory.String()+" DDR4")
	row("VE Cards", fmt.Sprintf("%dx %s, %s HBM2", len(sys.VEs), sys.VEs[0].Spec.Model, sys.VEs[0].Spec.MaxMemory))
	row("PCIe Config.", fmt.Sprintf("%d switches, %d VEs per switch (Fig. 3)", len(sys.Switches), len(sys.VEs)/len(sys.Switches)))
	row("VH OS", sys.VHOS)
	row("VH compiler", sys.VHCompiler)
	row("VEOS", sys.VEOSVer)
	row("VEO", sys.VEOVer)
	row("VE compiler", sys.VECompiler)
}

func itoa(v int) string        { return fmt.Sprintf("%d", v) }
func ghz(v float64) string     { return fmt.Sprintf("%.1f GHz", v) }
func gflops(v float64) string  { return fmt.Sprintf("%.1f GFLOPS", v) }
func watts(v int) string       { return fmt.Sprintf("%d W", v) }
func gbs(b units.Bytes) string { return fmt.Sprintf("%.1f GB/s", b.GBs()) }
