// Command hamlint runs the repository's invariant analyzers (walltime,
// spanend, detmap, goroutine, unitcast, flagorder, acqrel, afterfree) over
// the given packages. It is the lint half of `make check`:
//
//	go run ./cmd/hamlint ./...
//
// Findings print as file:line:col: [analyzer] message and make the command
// exit 1; -json emits them as a sorted JSON array instead. Each analyzer's
// contract — and the simulator invariant behind it — is documented in
// docs/LINTING.md; a finding can be suppressed at the offending line with
// `//lint:allow <analyzer> <justification>`.
package main

import (
	"flag"
	"fmt"
	"os"

	"hamoffload/internal/analysis/hamlint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hamlint [-list] [-json] [packages]\n\n"+
			"Runs the hamoffload invariant analyzers over the packages\n"+
			"(default ./...). See docs/LINTING.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range hamlint.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(hamlint.Main(".", patterns, os.Stdout, hamlint.Options{JSON: *jsonOut}))
}
