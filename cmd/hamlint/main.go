// Command hamlint runs the repository's invariant analyzers (walltime,
// spanend, detmap, goroutine, unitcast, flagorder, acqrel, afterfree,
// hotalloc, borrowck, allowcheck) over the given packages. It is the lint
// half of `make check`:
//
//	go run ./cmd/hamlint ./...
//
// Findings print as file:line:col: [analyzer] message and make the command
// exit 1; -json emits them as a sorted JSON array instead. -run restricts
// the run to a comma-separated subset of analyzers; -list prints the
// registered set (with -json, as a machine-readable array); -stats appends
// per-analyzer wall time and finding counts. Each analyzer's
// contract — and the simulator invariant behind it — is documented in
// docs/LINTING.md; a finding can be suppressed at the offending line with
// `//lint:allow <analyzer> <justification>` (the allowcheck pass reports
// directives that no longer suppress anything).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hamoffload/internal/analysis/hamlint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings (or -list output) as a JSON array")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	stats := flag.Bool("stats", false, "append per-analyzer wall time and finding counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hamlint [-list] [-json] [-run a,b] [-stats] [packages]\n\n"+
			"Runs the hamoffload invariant analyzers over the packages\n"+
			"(default ./...). See docs/LINTING.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(hamlint.List()); err != nil {
				fmt.Fprintf(os.Stderr, "hamlint: %v\n", err)
				os.Exit(2)
			}
			return
		}
		for _, a := range hamlint.List() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []string
	if *run != "" {
		for _, name := range strings.Split(*run, ",") {
			if name = strings.TrimSpace(name); name != "" {
				selected = append(selected, name)
			}
		}
	}
	os.Exit(hamlint.Main(".", patterns, os.Stdout, hamlint.Options{JSON: *jsonOut, Run: selected, Stats: *stats}))
}
