// Command coverreg is the test-coverage regression harness: the coverage
// analogue of benchreg. It measures statement coverage for the guarded
// packages (the serving gateway, the scheduler stack and the runtime core —
// the packages whose contracts this repository leans on hardest) and either
// records the numbers or fails when a fresh run drops below them:
//
//	coverreg                 measure and (re)write COVER_baseline.txt
//	coverreg -check          measure and fail if any guarded package fell
//	                         more than -slack points below its baseline
//
// Statement coverage of a deterministic test suite is stable, but the
// wall-clock backends take timing-dependent branches, so -check allows a
// small slack (default 2 points) before it calls a drop a regression. A rise
// is reported but never fails: refresh the baseline to ratchet it in.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// guarded are the package patterns whose coverage is under regression
// control. Patterns expand through `go test`, so sched/... covers the
// policies and the health breaker alike.
var guarded = []string{
	"hamoffload/gateway",
	"hamoffload/sched/...",
	"hamoffload/internal/core",
}

var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+\S+\s+coverage: (\d+(?:\.\d+)?)% of statements`)

func main() {
	check := flag.Bool("check", false, "compare against the committed baseline instead of rewriting it")
	slack := flag.Float64("slack", 2.0, "allowed drop in percentage points per package in -check mode")
	file := flag.String("file", "COVER_baseline.txt", "path of the coverage baseline")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "coverreg: "+format+"\n", args...)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "coverreg: measuring statement coverage of %s...\n", strings.Join(guarded, " "))
	cmd := exec.Command("go", append([]string{"test", "-cover"}, guarded...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fail("go test -cover failed: %v", err)
	}

	current := map[string]float64{}
	for _, line := range strings.Split(string(out), "\n") {
		if m := coverLine.FindStringSubmatch(line); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				fail("unparseable coverage %q for %s", m[2], m[1])
			}
			current[m[1]] = pct
		}
	}
	if len(current) == 0 {
		fail("no coverage lines in go test output")
	}
	pkgs := make([]string, 0, len(current))
	for pkg := range current {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	if !*check {
		var b strings.Builder
		b.WriteString("# Statement-coverage floors, enforced by `go run ./cmd/coverreg -check`.\n")
		b.WriteString("# Refresh with `go run ./cmd/coverreg` after deliberately growing or\n")
		b.WriteString("# shrinking the guarded suites.\n")
		for _, pkg := range pkgs {
			fmt.Fprintf(&b, "%s %.1f\n", pkg, current[pkg])
		}
		if err := os.WriteFile(*file, []byte(b.String()), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintln(os.Stderr, "coverreg: wrote", *file)
		return
	}

	raw, err := os.ReadFile(*file)
	if err != nil {
		fail("no baseline %s (run coverreg without -check to create it): %v", *file, err)
	}
	baseline := map[string]float64{}
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fail("%s:%d: want \"<package> <percent>\", got %q", *file, i+1, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			fail("%s:%d: %v", *file, i+1, err)
		}
		baseline[fields[0]] = pct
	}

	bad := 0
	for _, pkg := range pkgs {
		base, ok := baseline[pkg]
		if !ok {
			fmt.Fprintf(os.Stderr, "coverreg: %s has no baseline; refresh %s\n", pkg, *file)
			bad++
			continue
		}
		cur := current[pkg]
		switch {
		case cur < base-*slack:
			fmt.Fprintf(os.Stderr, "coverreg: %s dropped to %.1f%% (baseline %.1f%%, slack %.1f)\n",
				pkg, cur, base, *slack)
			bad++
		case cur > base+*slack:
			fmt.Fprintf(os.Stderr, "coverreg: %s rose to %.1f%% (baseline %.1f%%) — consider ratcheting the baseline\n",
				pkg, cur, base)
		default:
			fmt.Fprintf(os.Stderr, "coverreg: %s %.1f%% (baseline %.1f%%) ok\n", pkg, cur, base)
		}
	}
	for pkg := range baseline {
		if _, ok := current[pkg]; !ok {
			fmt.Fprintf(os.Stderr, "coverreg: baseline names %s but the run measured no such package\n", pkg)
			bad++
		}
	}
	if bad > 0 {
		fail("%d coverage regression(s)", bad)
	}
	fmt.Fprintln(os.Stderr, "coverreg: coverage floors hold")
}
