package health

import (
	"testing"

	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
)

// testClock is a hand-advanced simulated clock.
type testClock struct{ now simtime.Time }

func (c *testClock) tick(d simtime.Duration) { c.now = c.now.Add(d) }
func (c *testClock) read() simtime.Time      { return c.now }
func nodes(ids ...core.NodeID) []core.NodeID { return ids }
func newT(cfg Config, clk *testClock, ids ...core.NodeID) *Tracker {
	return New(cfg, nodes(ids...), clk.read)
}

func TestDefaultsApplied(t *testing.T) {
	trk := newT(Config{}, &testClock{}, 1)
	if trk.cfg.EWMAAlpha != 0.25 || trk.cfg.OutlierFactor != 4 ||
		trk.cfg.OutlierStrikes != 8 || trk.cfg.FailureStrikes != 3 ||
		trk.cfg.OpenFor != 200*simtime.Microsecond || trk.cfg.ProbeSuccesses != 1 {
		t.Fatalf("defaults not applied: %+v", trk.cfg)
	}
}

func TestClosedAllowsEverything(t *testing.T) {
	trk := newT(Config{}, &testClock{}, 1, 2, 3)
	for _, n := range nodes(1, 2, 3) {
		if !trk.Allows(n) {
			t.Fatalf("fresh tracker must allow node %d", n)
		}
		if s := trk.StateOf(n); s != Closed {
			t.Fatalf("fresh node %d state = %v", n, s)
		}
	}
	// Untracked nodes are always admitted.
	if !trk.Allows(99) {
		t.Fatal("untracked node must be allowed")
	}
}

func TestFailureStrikesOpenBreaker(t *testing.T) {
	clk := &testClock{}
	trk := newT(Config{FailureStrikes: 3}, clk, 1, 2)
	trk.Observe(1, 0, true)
	trk.Observe(1, 0, true)
	if trk.StateOf(1) != Closed {
		t.Fatal("breaker opened one strike early")
	}
	trk.Observe(1, 0, true)
	if trk.StateOf(1) != Open {
		t.Fatal("three consecutive failures must open the breaker")
	}
	if trk.Allows(1) {
		t.Fatal("open breaker inside cooldown must not admit traffic")
	}
	if !trk.Allows(2) {
		t.Fatal("sibling node must stay admitted")
	}
	if trk.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", trk.Transitions())
	}
}

func TestSuccessResetsFailureRun(t *testing.T) {
	trk := newT(Config{FailureStrikes: 3}, &testClock{}, 1, 2)
	trk.Observe(1, simtime.Microsecond, true)
	trk.Observe(1, simtime.Microsecond, true)
	trk.Observe(1, simtime.Microsecond, false) // success resets the run
	trk.Observe(1, simtime.Microsecond, true)
	trk.Observe(1, simtime.Microsecond, true)
	if trk.StateOf(1) != Closed {
		t.Fatal("non-consecutive failures must not open the breaker")
	}
}

func TestOutlierStrikesOpenBreaker(t *testing.T) {
	clk := &testClock{}
	trk := newT(Config{OutlierFactor: 3, OutlierStrikes: 4}, clk, 1, 2)
	// Node 2 is the healthy reference at ~5 µs.
	for i := 0; i < 8; i++ {
		trk.Observe(2, 5*simtime.Microsecond, false)
	}
	// Node 1 answers, but 20× slower — a gray failure.
	for i := 0; i < 3; i++ {
		trk.Observe(1, 100*simtime.Microsecond, false)
		if trk.StateOf(1) != Closed {
			t.Fatalf("breaker opened after %d outliers, want 4", i+1)
		}
	}
	trk.Observe(1, 100*simtime.Microsecond, false)
	if trk.StateOf(1) != Open {
		t.Fatal("four consecutive outliers must open the breaker")
	}
	if ew, ok := trk.EWMA(1); !ok || ew <= 0 {
		t.Fatalf("EWMA(1) = %v, %v", ew, ok)
	}
}

func TestSingleNodeNeverOutlier(t *testing.T) {
	trk := newT(Config{OutlierStrikes: 2}, &testClock{}, 1)
	for i := 0; i < 20; i++ {
		trk.Observe(1, 100*simtime.Microsecond, false)
	}
	if trk.StateOf(1) != Closed {
		t.Fatal("a lone node has no reference and must not eject on latency")
	}
}

func TestProbeReadmission(t *testing.T) {
	clk := &testClock{}
	cfg := Config{FailureStrikes: 2, OpenFor: 100 * simtime.Microsecond}
	trk := newT(cfg, clk, 1, 2)
	trk.Observe(1, 0, true)
	trk.Observe(1, 0, true)
	if trk.StateOf(1) != Open {
		t.Fatal("breaker must be open")
	}
	if trk.Allows(1) {
		t.Fatal("cooldown has not elapsed")
	}
	clk.tick(cfg.OpenFor)
	if !trk.Allows(1) {
		t.Fatal("elapsed cooldown must admit a probe")
	}
	// Allows is pure: checking twice must not consume the probe slot.
	if !trk.Allows(1) || trk.StateOf(1) != Open {
		t.Fatal("Allows must not mutate breaker state")
	}
	trk.CommitAdmit(1)
	if trk.StateOf(1) != HalfOpen {
		t.Fatal("committed admission must move the breaker to half-open")
	}
	if trk.Allows(1) {
		t.Fatal("half-open breaker with probe in flight must not admit more")
	}
	trk.Observe(1, 5*simtime.Microsecond, false)
	if trk.StateOf(1) != Closed {
		t.Fatal("successful probe must re-close the breaker")
	}
	if !trk.Allows(1) {
		t.Fatal("re-closed breaker must admit traffic")
	}
}

func TestFailedProbeReopens(t *testing.T) {
	clk := &testClock{}
	cfg := Config{FailureStrikes: 2, OpenFor: 50 * simtime.Microsecond}
	trk := newT(cfg, clk, 1, 2)
	trk.Observe(1, 0, true)
	trk.Observe(1, 0, true)
	clk.tick(cfg.OpenFor)
	trk.CommitAdmit(1)
	trk.Observe(1, 0, true) // probe fails
	if trk.StateOf(1) != Open {
		t.Fatal("failed probe must re-open the breaker")
	}
	if trk.Allows(1) {
		t.Fatal("re-opened breaker must start a fresh cooldown")
	}
	clk.tick(cfg.OpenFor)
	if !trk.Allows(1) {
		t.Fatal("fresh cooldown must elapse again")
	}
}

func TestProbeSuccessesThreshold(t *testing.T) {
	clk := &testClock{}
	cfg := Config{FailureStrikes: 1, OpenFor: simtime.Microsecond, ProbeSuccesses: 2}
	trk := newT(cfg, clk, 1, 2)
	trk.Observe(1, 0, true)
	clk.tick(cfg.OpenFor)
	trk.CommitAdmit(1)
	trk.Observe(1, simtime.Microsecond, false)
	if trk.StateOf(1) != HalfOpen {
		t.Fatal("one probe success of two must keep the breaker half-open")
	}
	if !trk.Allows(1) {
		t.Fatal("settled probe must free the probe slot")
	}
	trk.CommitAdmit(1)
	trk.Observe(1, simtime.Microsecond, false)
	if trk.StateOf(1) != Closed {
		t.Fatal("second probe success must re-close the breaker")
	}
}

func TestStragglerSettlementsIgnored(t *testing.T) {
	clk := &testClock{}
	trk := newT(Config{FailureStrikes: 1, OpenFor: simtime.Second}, clk, 1, 2)
	trk.Observe(1, 0, true)
	if trk.StateOf(1) != Open {
		t.Fatal("breaker must be open")
	}
	// Settlements of offloads issued before ejection drain while open; they
	// must not move the breaker in either direction.
	trk.Observe(1, simtime.Microsecond, false)
	trk.Observe(1, 0, true)
	if trk.StateOf(1) != Open {
		t.Fatal("observations while open must not transition the breaker")
	}
	obs, failed := trk.Stats(1)
	if obs != 3 || failed != 2 {
		t.Fatalf("stats = (%d, %d), want (3, 2)", obs, failed)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
