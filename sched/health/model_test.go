package health_test

import (
	"testing"

	"hamoffload/internal/core"
	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/sched/health"
)

// Model-based property test: drive a Tracker through long random
// Observe/Allows/CommitAdmit schedules on a hand-advanced simulated clock,
// in lockstep with an independent reference state machine written straight
// from the breaker's documented contract. At every step the tracker's
// observable state (StateOf, Allows, EWMA) must match the model, and the
// model asserts the safety properties random walks are best at violating:
//
//   - a breaker never returns to Closed after its strike threshold without
//     an admitted probe succeeding first;
//   - HalfOpen admits exactly one probe — once the slot is taken, Allows
//     stays false until that probe settles;
//   - the latency history resets on the Open -> HalfOpen transition, so
//     pre-ejection EWMA can never condemn a recovered node.
//
// The reference below deliberately re-derives the semantics from the
// package documentation rather than importing the implementation's
// structure, so a refactor that silently changes behaviour trips it.

// refNode mirrors one node's breaker from the documented contract.
type refNode struct {
	ewma    float64
	sampled bool
	failRun int
	slowRun int

	state    health.State
	openedAt simtime.Time
	probing  bool
	probeOK  int
}

// refTracker is the reference state machine over all nodes.
type refTracker struct {
	cfg   health.Config
	now   *simtime.Time
	nodes map[core.NodeID]*refNode

	// property bookkeeping
	closedViaProbe bool // last transition to Closed was a successful probe
}

func newRef(cfg health.Config, ids []core.NodeID, now *simtime.Time) *refTracker {
	r := &refTracker{cfg: cfg, now: now, nodes: make(map[core.NodeID]*refNode)}
	for _, id := range ids {
		r.nodes[id] = &refNode{}
	}
	return r
}

func (r *refTracker) bestEWMA(skip *refNode) (float64, bool) {
	best, ok := 0.0, false
	// Map iteration order does not matter: min over a set.
	for _, n := range r.nodes {
		if n == skip || !n.sampled {
			continue
		}
		if !ok || n.ewma < best {
			best, ok = n.ewma, true
		}
	}
	return best, ok
}

func (r *refTracker) observe(t *testing.T, id core.NodeID, lat simtime.Duration, failed bool) {
	n := r.nodes[id]
	if failed {
		n.failRun++
	} else {
		n.failRun = 0
		if !n.sampled {
			n.ewma, n.sampled = float64(lat), true
		} else {
			a := r.cfg.EWMAAlpha
			n.ewma = a*float64(lat) + (1-a)*n.ewma
		}
	}
	outlier := false
	if !failed && n.sampled {
		if best, ok := r.bestEWMA(n); ok && n.ewma > r.cfg.OutlierFactor*best {
			outlier = true
		}
	}
	if outlier {
		n.slowRun++
	} else if !failed {
		n.slowRun = 0
	}
	switch n.state {
	case health.Closed:
		if n.failRun >= r.cfg.FailureStrikes || n.slowRun >= r.cfg.OutlierStrikes {
			n.state = health.Open
			n.openedAt = *r.now
			n.probing = false
			n.probeOK = 0
		}
	case health.HalfOpen:
		if !n.probing {
			return // straggler settlement: must not move the breaker
		}
		n.probing = false
		if failed || outlier {
			n.state = health.Open
			n.openedAt = *r.now
			n.probeOK = 0
			return
		}
		n.probeOK++
		if n.probeOK >= r.cfg.ProbeSuccesses {
			// PROPERTY: the only path back to Closed from an ejection runs
			// through an admitted probe that succeeded.
			n.state = health.Closed
			n.failRun, n.slowRun, n.probing = 0, 0, false
			r.closedViaProbe = true
		}
	case health.Open:
		// Late settlements never move an open breaker.
	}
}

func (r *refTracker) allows(id core.NodeID) bool {
	n := r.nodes[id]
	switch n.state {
	case health.Closed:
		return true
	case health.Open:
		return r.now.Sub(n.openedAt) >= r.cfg.OpenFor
	default:
		return !n.probing
	}
}

func (r *refTracker) commitAdmit(t *testing.T, id core.NodeID) {
	n := r.nodes[id]
	switch n.state {
	case health.Open:
		if r.now.Sub(n.openedAt) >= r.cfg.OpenFor {
			n.state = health.HalfOpen
			n.probing = true
			n.probeOK = 0
			// PROPERTY: latency history resets on entry to HalfOpen.
			n.ewma, n.sampled = 0, false
		}
	case health.HalfOpen:
		if n.probing {
			t.Fatal("commitAdmit on a half-open breaker whose probe slot is taken: scheduler admitted a second probe")
		}
		n.probing = true
	}
}

func runModelSchedule(t *testing.T, seed uint64, steps int) (transitions int64, closedViaProbe bool) {
	ids := []core.NodeID{1, 2, 3}
	cfg := health.Config{
		EWMAAlpha:      0.25,
		OutlierFactor:  4,
		OutlierStrikes: 4,
		FailureStrikes: 3,
		OpenFor:        50 * simtime.Microsecond,
		ProbeSuccesses: 2, // >1 exercises the multi-probe re-close path
	}
	var now simtime.Time
	trk := health.New(cfg, ids, func() simtime.Time { return now })
	ref := newRef(cfg, ids, &now)

	check := func(step int) {
		t.Helper()
		for _, id := range ids {
			n := ref.nodes[id]
			if got := trk.StateOf(id); got != n.state {
				t.Fatalf("step %d node %d: state %v, model %v", step, id, got, n.state)
			}
			if got := trk.Allows(id); got != ref.allows(id) {
				t.Fatalf("step %d node %d: Allows %v, model %v", step, id, got, !got)
			}
			ew, ok := trk.EWMA(id)
			if ok != n.sampled {
				t.Fatalf("step %d node %d: EWMA sampled %v, model %v", step, id, ok, n.sampled)
			}
			if ok && ew != simtime.Duration(n.ewma) {
				t.Fatalf("step %d node %d: EWMA %v, model %v", step, id, ew, simtime.Duration(n.ewma))
			}
			if n.state == health.HalfOpen && n.probing && trk.Allows(id) {
				t.Fatalf("step %d node %d: half-open probe slot taken but Allows is true — admits more than one probe", step, id)
			}
		}
	}

	for i := 0; i < steps; i++ {
		r := faults.Mix(seed, uint64(i))
		id := ids[r%uint64(len(ids))]
		switch (r >> 8) % 5 {
		case 0, 1: // settle a fast offload
			ref.observe(t, id, simtime.Duration(5+(r>>16)%10)*simtime.Microsecond, false)
			trk.Observe(id, simtime.Duration(5+(r>>16)%10)*simtime.Microsecond, false)
		case 2: // settle a pathologically slow offload (outlier pressure)
			ref.observe(t, id, simtime.Duration(200+(r>>16)%400)*simtime.Microsecond, false)
			trk.Observe(id, simtime.Duration(200+(r>>16)%400)*simtime.Microsecond, false)
		case 3: // settle a failure
			ref.observe(t, id, 0, true)
			trk.Observe(id, 0, true)
		case 4: // the scheduler path: filter on Allows, then commit
			if trk.Allows(id) != ref.allows(id) {
				t.Fatalf("step %d node %d: Allows diverged before commit", i, id)
			}
			if trk.Allows(id) {
				before := trk.StateOf(id)
				ref.commitAdmit(t, id)
				trk.CommitAdmit(id)
				if before == health.Open && trk.StateOf(id) == health.HalfOpen {
					if _, ok := trk.EWMA(id); ok {
						t.Fatalf("step %d node %d: EWMA survived the open -> half-open transition", i, id)
					}
				}
			}
		}
		if (r>>32)%3 == 0 {
			now = now.Add(simtime.Duration(1+(r>>40)%30) * simtime.Microsecond)
		}
		check(i)
	}

	return trk.Transitions(), ref.closedViaProbe
}

func TestBreakerAgainstModel(t *testing.T) {
	var transitions int64
	probed := 0
	for _, seed := range []uint64{1, 42, 0xC0FFEE, 0xDEADBEEF, 9000} {
		tr, p := runModelSchedule(t, seed, 4000)
		transitions += tr
		if p {
			probed++
		}
	}
	// The schedules must actually reach the interesting states, or the model
	// comparison above degenerates to testing Closed only. Guards re-seeding.
	if transitions == 0 {
		t.Fatal("no breaker ever opened across all seeds: the schedule generator lost its teeth")
	}
	if probed == 0 {
		t.Fatal("no breaker ever re-closed through a probe across all seeds")
	}
}

// TestBreakerModelCoverage pins that the random schedules actually reach
// the interesting states: a breaker opens, admits exactly one probe, and
// re-closes through it. Without this a regression in the generator could
// reduce TestBreakerAgainstModel to testing the Closed state only.
func TestBreakerModelCoverage(t *testing.T) {
	ids := []core.NodeID{1, 2}
	var now simtime.Time
	cfg := health.Config{FailureStrikes: 3, OpenFor: 50 * simtime.Microsecond}
	trk := health.New(cfg, ids, func() simtime.Time { return now })

	for i := 0; i < 3; i++ {
		trk.Observe(1, 0, true)
	}
	if trk.StateOf(1) != health.Open {
		t.Fatalf("state after strikes = %v, want Open", trk.StateOf(1))
	}
	if trk.Allows(1) {
		t.Fatal("open breaker inside cooldown must not admit")
	}
	now = now.Add(50 * simtime.Microsecond)
	if !trk.Allows(1) {
		t.Fatal("open breaker past cooldown must offer a probe")
	}
	trk.CommitAdmit(1)
	if trk.StateOf(1) != health.HalfOpen {
		t.Fatalf("state after probe admit = %v, want HalfOpen", trk.StateOf(1))
	}
	if trk.Allows(1) {
		t.Fatal("half-open breaker with its probe in flight must not admit a second")
	}
	trk.Observe(1, 10*simtime.Microsecond, false)
	if trk.StateOf(1) != health.Closed {
		t.Fatalf("state after successful probe = %v, want Closed", trk.StateOf(1))
	}
}
