// Package health scores the target nodes of a HAM-Offload application and
// ejects the sick ones — the gray-failure complement to core's fail-stop
// retry machinery. A Tracker keeps a latency EWMA and an error rate per
// node, fed from offload settlements, and runs a per-node circuit breaker:
//
//	         strikes (consecutive failures, or EWMA
//	         an outlier against the healthiest node)
//	CLOSED ────────────────────────────────────────▶ OPEN
//	  ▲                                               │
//	  │ probe succeeds                     OpenFor    │
//	  │ (ProbeSuccesses times)             elapses    │
//	  │                                               ▼
//	  └───────────────────────────────────────── HALF-OPEN
//	                   probe fails ▶ back to OPEN
//
// An open breaker makes the node invisible to a health-aware scheduling
// policy (sched.HealthAware) and to hedge-target selection, so traffic
// routes around a slow-but-alive VE instead of queueing behind it. After
// OpenFor of simulated time the breaker admits a single probe offload;
// the probe's outcome either re-closes the breaker (node re-admitted) or
// re-opens it for another cooldown.
//
// Everything is deterministic: the Tracker observes only what it is fed,
// timestamps come from the caller-supplied simulated clock, and all state
// lives in slices indexed by node id — no map iteration, no wall clock.
package health

import (
	"fmt"

	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// State is one node's circuit-breaker state.
type State uint8

const (
	// Closed admits traffic normally — the healthy state.
	Closed State = iota
	// Open ejects the node: no traffic until the cooldown elapses.
	Open
	// HalfOpen admits a single probe offload whose outcome decides between
	// re-closing and re-opening.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Config parameterises a Tracker. The zero value of every field selects a
// sensible default, so New(Config{}, ...) is usable directly.
type Config struct {
	// EWMAAlpha is the weight of the newest latency sample in the per-node
	// EWMA (default 0.25).
	EWMAAlpha float64
	// OutlierFactor ejects a node whose latency EWMA exceeds this multiple
	// of the healthiest node's EWMA (default 4). Outlier detection needs at
	// least two nodes with samples; a single-node tracker only ejects on
	// failures.
	OutlierFactor float64
	// OutlierStrikes is how many consecutive outlier observations open the
	// breaker (default 8) — one slow sample is noise, a run of them is a
	// gray failure.
	OutlierStrikes int
	// FailureStrikes is how many consecutive failed offloads open the
	// breaker (default 3).
	FailureStrikes int
	// OpenFor is the cooldown an open breaker holds before admitting a
	// probe (default 200 µs of simulated time).
	OpenFor simtime.Duration
	// ProbeSuccesses is how many consecutive successful probes re-close a
	// half-open breaker (default 1).
	ProbeSuccesses int
}

func (c Config) withDefaults() Config {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.25
	}
	if c.OutlierFactor <= 1 {
		c.OutlierFactor = 4
	}
	if c.OutlierStrikes <= 0 {
		c.OutlierStrikes = 8
	}
	if c.FailureStrikes <= 0 {
		c.FailureStrikes = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 200 * simtime.Microsecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	return c
}

// node is one target's health state.
type node struct {
	id       core.NodeID
	ewma     float64 // latency EWMA in picoseconds; valid once sampled
	sampled  bool
	failRun  int // consecutive failures
	slowRun  int // consecutive outlier observations
	state    State
	openedAt simtime.Time
	probing  bool // HalfOpen: the single probe slot is taken
	probeOK  int  // HalfOpen: consecutive probe successes so far
	observed int64
	failed   int64
}

// Tracker scores a fixed set of target nodes and runs their breakers. Like
// the rest of the initiator-side stack it is not safe for concurrent use;
// on the simulated backends all observations arrive from the single
// running DES process.
type Tracker struct {
	cfg   Config
	clock func() simtime.Time
	nodes []node
	index []int // node id -> nodes index, -1 when untracked
	trans int64

	tr  *trace.NodeTracer
	tel *telemetry.Collector
}

// New builds a tracker over the given target nodes. clock supplies the
// simulated time breaker cooldowns are measured on; pass the runtime's
// SimNow. A nil clock pins time to 0, which degrades gracefully: breakers
// still open on strikes, and cooldowns of length zero are the only ones
// that ever elapse.
func New(cfg Config, nodes []core.NodeID, clock func() simtime.Time) *Tracker {
	if clock == nil {
		clock = func() simtime.Time { return 0 }
	}
	t := &Tracker{cfg: cfg.withDefaults(), clock: clock}
	max := -1
	for _, id := range nodes {
		t.nodes = append(t.nodes, node{id: id})
		if int(id) > max {
			max = int(id)
		}
	}
	t.index = make([]int, max+1)
	for i := range t.index {
		t.index[i] = -1
	}
	for i, n := range t.nodes {
		t.index[n.id] = i
	}
	return t
}

// SetTracer attaches a trace handle; breaker transitions are then recorded
// as PhaseBreaker instants. Nil (the default) disables.
func (t *Tracker) SetTracer(tr *trace.NodeTracer) { t.tr = tr }

// SetTelemetry attaches a collector; the tracker then records the per-node
// latency EWMA (SeriesHealth) and breaker state (SeriesBreaker) series.
func (t *Tracker) SetTelemetry(tel *telemetry.Collector) { t.tel = tel }

// Nodes returns the tracked node set in tracker order.
func (t *Tracker) Nodes() []core.NodeID {
	out := make([]core.NodeID, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.id
	}
	return out
}

// Transitions returns how many breaker state transitions have occurred.
func (t *Tracker) Transitions() int64 { return t.trans }

// StateOf returns a node's breaker state (Closed for untracked nodes).
func (t *Tracker) StateOf(id core.NodeID) State {
	if n := t.lookup(id); n != nil {
		return n.state
	}
	return Closed
}

// EWMA returns a node's latency EWMA and whether it has samples yet.
func (t *Tracker) EWMA(id core.NodeID) (simtime.Duration, bool) {
	if n := t.lookup(id); n != nil && n.sampled {
		return simtime.Duration(n.ewma), true
	}
	return 0, false
}

func (t *Tracker) lookup(id core.NodeID) *node {
	if int(id) < 0 || int(id) >= len(t.index) {
		return nil
	}
	i := t.index[id]
	if i < 0 {
		return nil
	}
	return &t.nodes[i]
}

// bestEWMA returns the healthiest sampled EWMA, excluding node skip.
func (t *Tracker) bestEWMA(skip *node) (float64, bool) {
	best, ok := 0.0, false
	for i := range t.nodes {
		n := &t.nodes[i]
		if n == skip || !n.sampled {
			continue
		}
		if !ok || n.ewma < best {
			best, ok = n.ewma, true
		}
	}
	return best, ok
}

// transition moves n to state s, emitting the trace instant and telemetry
// gauge every transition carries.
func (t *Tracker) transition(n *node, s State) {
	if n.state == s {
		return
	}
	now := t.clock()
	t.trans++
	t.tr.Instant(trace.PhaseBreaker,
		fmt.Sprintf("node %d %s -> %s", n.id, n.state, s), t.trans)
	if t.tel != nil {
		t.tel.Gauge(int(n.id), telemetry.SeriesBreaker, now, int64(s))
	}
	n.state = s
	switch s {
	case Open:
		n.openedAt = now
		n.probing = false
		n.probeOK = 0
	case HalfOpen:
		n.probing = false
		n.probeOK = 0
		// Latency history from before the ejection would judge even a fast
		// probe an outlier forever; the probe re-learns from scratch. A probe
		// that is still slow sets a fresh outlier EWMA and re-opens.
		n.ewma, n.sampled = 0, false
	case Closed:
		n.failRun = 0
		n.slowRun = 0
		n.probing = false
	}
}

// Observe feeds one settled offload into the tracker: the node it ran on,
// its issue-to-settle latency, and whether it failed. Schedulers call this
// from future settlement; conformance and chaos tests feed it directly.
func (t *Tracker) Observe(id core.NodeID, lat simtime.Duration, failed bool) {
	n := t.lookup(id)
	if n == nil {
		return
	}
	n.observed++
	if failed {
		n.failed++
		n.failRun++
	} else {
		n.failRun = 0
		a := t.cfg.EWMAAlpha
		if !n.sampled {
			n.ewma, n.sampled = float64(lat), true
		} else {
			n.ewma = a*float64(lat) + (1-a)*n.ewma
		}
		if t.tel != nil {
			t.tel.Gauge(int(n.id), telemetry.SeriesHealth, t.clock(), int64(n.ewma))
		}
	}
	outlier := false
	if !failed && n.sampled {
		if best, ok := t.bestEWMA(n); ok && n.ewma > t.cfg.OutlierFactor*best {
			outlier = true
		}
	}
	if outlier {
		n.slowRun++
	} else if !failed {
		n.slowRun = 0
	}
	switch n.state {
	case Closed:
		if n.failRun >= t.cfg.FailureStrikes || n.slowRun >= t.cfg.OutlierStrikes {
			t.transition(n, Open)
		}
	case HalfOpen:
		if !n.probing {
			return // a straggler from before the breaker opened; ignore
		}
		n.probing = false
		if failed || outlier {
			t.transition(n, Open)
			return
		}
		n.probeOK++
		if n.probeOK >= t.cfg.ProbeSuccesses {
			t.transition(n, Closed)
		}
	case Open:
		// Late settlements of offloads issued before ejection; counted in
		// the stats above but they do not move the breaker.
	}
}

// Allows reports whether id may receive traffic right now. It is pure —
// candidate filtering may call it for every node without consuming probe
// slots; the scheduler applies the chosen node through CommitAdmit.
// Untracked nodes are always allowed.
func (t *Tracker) Allows(id core.NodeID) bool {
	n := t.lookup(id)
	if n == nil {
		return true
	}
	switch n.state {
	case Closed:
		return true
	case Open:
		return t.clock().Sub(n.openedAt) >= t.cfg.OpenFor
	default: // HalfOpen
		return !n.probing
	}
}

// CommitAdmit records that the caller is sending traffic to id: an open
// breaker past its cooldown transitions to half-open, and the half-open
// probe slot is consumed. Call it only for the node actually picked.
func (t *Tracker) CommitAdmit(id core.NodeID) {
	n := t.lookup(id)
	if n == nil {
		return
	}
	switch n.state {
	case Open:
		if t.clock().Sub(n.openedAt) >= t.cfg.OpenFor {
			t.transition(n, HalfOpen)
			n.probing = true
		}
	case HalfOpen:
		n.probing = true
	}
}

// Stats returns one node's observation counters (settled, failed).
func (t *Tracker) Stats(id core.NodeID) (observed, failed int64) {
	if n := t.lookup(id); n != nil {
		return n.observed, n.failed
	}
	return 0, 0
}
