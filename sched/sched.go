// Package sched schedules offload work across the Vector Engines of a
// HAM-Offload application — the cluster-scale layer the paper's §VI outlook
// gestures at. A Scheduler owns a set of target nodes (typically every VE
// of a machine.Cluster) and a pluggable placement Policy; Map and ForEach
// shard a sequence of functor invocations across those nodes and gather
// the results in task order.
//
// Submission composes with core's message batching: when the runtime has a
// BatchPolicy armed, the tasks assigned to one node coalesce into batch
// frames and amortise the per-message protocol cost; with batching off,
// each task travels as an ordinary async offload. Either way scheduling is
// deterministic: policies are pure functions of the observable scheduler
// state, which on the simulated backends evolves identically from run to
// run.
package sched

import (
	"fmt"

	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
	"hamoffload/sched/health"
)

// Policy decides placement: given the task index, the candidate nodes and
// the scheduler's current per-node in-flight counts (parallel to nodes),
// Pick returns the index of the chosen node. Implementations must be
// deterministic — no wall clock, no math/rand — so simulated runs stay
// bit-reproducible.
type Policy interface {
	// Name labels the policy in traces and experiment output.
	Name() string
	// Pick chooses nodes[i] for the task. Out-of-range returns fall back
	// to round-robin placement.
	Pick(task int, nodes []core.NodeID, inflight []int) int
}

// RoundRobin places tasks on the nodes in rotation, ignoring load — the
// right default when tasks are uniform.
func RoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(task int, nodes []core.NodeID, inflight []int) int {
	i := r.next % len(nodes)
	r.next++
	return i
}

// LeastInFlight places each task on the node with the fewest offloads
// still in flight, breaking ties toward the lowest index. With uneven task
// durations it keeps slow nodes from accumulating backlog as completed
// futures are harvested.
func LeastInFlight() Policy { return leastInFlight{} }

type leastInFlight struct{}

func (leastInFlight) Name() string { return "least-in-flight" }

func (leastInFlight) Pick(task int, nodes []core.NodeID, inflight []int) int {
	best := 0
	for i := 1; i < len(inflight); i++ {
		if inflight[i] < inflight[best] {
			best = i
		}
	}
	return best
}

// Affinity pins tasks to nodes through assign, for workloads whose data
// already lives on specific VEs. A task whose assigned node is not among
// the scheduler's falls back to round-robin placement by task index.
func Affinity(assign func(task int) core.NodeID) Policy { return affinity{assign} }

type affinity struct {
	assign func(task int) core.NodeID
}

func (affinity) Name() string { return "affinity" }

func (a affinity) Pick(task int, nodes []core.NodeID, inflight []int) int {
	want := a.assign(task)
	for i, n := range nodes {
		if n == want {
			return i
		}
	}
	return task % len(nodes)
}

// HealthAware composes a placement policy with a health tracker: candidate
// nodes whose circuit breaker is open are filtered out before the inner
// policy picks, so traffic routes around ejected nodes; the one node
// actually picked is committed back to the tracker, which is how an open
// breaker's probe slot gets consumed. When every candidate is ejected the
// policy fails open — degraded service beats no service — and the inner
// policy picks over the full set.
//
// Used as a Scheduler's policy, the scheduler feeds every settled task's
// (node, latency, outcome) back into the tracker automatically, closing
// the observe → score → eject → probe → re-admit loop.
func HealthAware(inner Policy, t *health.Tracker) Policy {
	return &healthAware{inner: inner, trk: t}
}

type healthAware struct {
	inner Policy
	trk   *health.Tracker

	// Pick scratch, reused across calls to keep placement allocation-free.
	fnodes    []core.NodeID
	finflight []int
	fidx      []int
}

func (h *healthAware) Name() string { return "health+" + h.inner.Name() }

func (h *healthAware) Pick(task int, nodes []core.NodeID, inflight []int) int {
	h.fnodes, h.finflight, h.fidx = h.fnodes[:0], h.finflight[:0], h.fidx[:0]
	for i, n := range nodes {
		if h.trk.Allows(n) {
			h.fnodes = append(h.fnodes, n)
			h.finflight = append(h.finflight, inflight[i])
			h.fidx = append(h.fidx, i)
		}
	}
	if len(h.fnodes) == 0 {
		i := h.inner.Pick(task, nodes, inflight)
		if i < 0 || i >= len(nodes) {
			i = task % len(nodes)
		}
		h.trk.CommitAdmit(nodes[i])
		return i
	}
	j := h.inner.Pick(task, h.fnodes, h.finflight)
	if j < 0 || j >= len(h.fnodes) {
		j = task % len(h.fnodes)
	}
	i := h.fidx[j]
	h.trk.CommitAdmit(nodes[i])
	return i
}

func (h *healthAware) observe(n core.NodeID, lat simtime.Duration, failed bool) {
	h.trk.Observe(n, lat, failed)
}

// settleObserver is implemented by policies that want task settlements fed
// back to them (healthAware feeds its tracker). The scheduler detects it
// and wires the observations into future settlement.
type settleObserver interface {
	observe(n core.NodeID, lat simtime.Duration, failed bool)
}

// Scheduler shards offloads across a fixed node set under a Policy. Like
// the rest of the initiator API it is not safe for concurrent use.
type Scheduler struct {
	rt       *core.Runtime
	nodes    []core.NodeID
	pol      Policy
	inflight []int
	issued   int64
	done     int64
}

// New builds a scheduler over nodes of rt's application. Every node must
// be a valid offload target (in range, not the caller itself).
func New(rt *core.Runtime, nodes []core.NodeID, pol Policy) (*Scheduler, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sched: no target nodes")
	}
	if pol == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	for _, n := range nodes {
		if n == rt.ThisNode() {
			return nil, fmt.Errorf("sched: node %d is the scheduling node itself", n)
		}
		if int(n) < 0 || int(n) >= rt.NumNodes() {
			return nil, fmt.Errorf("sched: no node %d in this application (%d nodes)", n, rt.NumNodes())
		}
	}
	return &Scheduler{
		rt:       rt,
		nodes:    append([]core.NodeID(nil), nodes...),
		pol:      pol,
		inflight: make([]int, len(nodes)),
	}, nil
}

// Targets returns every node of rt's application except the caller itself —
// the natural node set for a scheduler over all VEs.
func Targets(rt *core.Runtime) []core.NodeID {
	var nodes []core.NodeID
	for n := 0; n < rt.NumNodes(); n++ {
		if core.NodeID(n) != rt.ThisNode() {
			nodes = append(nodes, core.NodeID(n))
		}
	}
	return nodes
}

// Nodes returns the scheduler's node set.
func (s *Scheduler) Nodes() []core.NodeID { return append([]core.NodeID(nil), s.nodes...) }

// Policy returns the placement policy.
func (s *Scheduler) Policy() Policy { return s.pol }

// InFlight returns the current per-node in-flight counts, parallel to
// Nodes. Counts drop as futures settle (in Get/Test), so they reflect the
// initiator's view, not the wire.
func (s *Scheduler) InFlight() []int { return append([]int(nil), s.inflight...) }

// Issued returns how many tasks the scheduler has placed.
func (s *Scheduler) Issued() int64 { return s.issued }

// Completed returns how many placed tasks have settled.
func (s *Scheduler) Completed() int64 { return s.done }

// place runs the policy for one task, clamping bad returns to round-robin.
func (s *Scheduler) place(task int) int {
	i := s.pol.Pick(task, s.nodes, s.inflight)
	if i < 0 || i >= len(s.nodes) {
		i = task % len(s.nodes)
	}
	return i
}

// MapFutures shards n functor invocations — gen(task) for task 0..n-1 —
// across the scheduler's nodes and returns the futures in task order,
// without waiting for any of them. Tasks bound for the same node ride the
// runtime's batch frames when batching is armed.
func MapFutures[R any](s *Scheduler, n int, gen func(task int) core.Functor[R]) []*core.Future[R] {
	b := core.NewBatcher(s.rt)
	obs, observing := s.pol.(settleObserver)
	futs := make([]*core.Future[R], n)
	for task := 0; task < n; task++ {
		i := s.place(task)
		node := s.nodes[i]
		f := core.BatchAdd(b, node, gen(task))
		s.rt.NotePlacement(s.pol.Name(), node)
		s.inflight[i]++
		s.issued++
		if observing {
			// Feed the settlement back to the policy: Get inside OnSettle
			// returns the already-cached outcome, so this never blocks.
			start := s.rt.SimNow()
			f.OnSettle(func() {
				s.inflight[i]--
				s.done++
				_, err := f.Get()
				obs.observe(node, s.rt.SimNow().Sub(start), err != nil)
			})
		} else {
			f.OnSettle(func() {
				s.inflight[i]--
				s.done++
			})
		}
		futs[task] = f
	}
	b.FlushAll()
	return futs
}

// Map shards n functor invocations across the scheduler's nodes, waits for
// all of them, and returns the results in task order plus the first error
// (after draining every future, so no offload is left dangling).
func Map[R any](s *Scheduler, n int, gen func(task int) core.Functor[R]) ([]R, error) {
	return core.GetAll(MapFutures(s, n, gen))
}

// ForEach is Map for side-effecting tasks: results are discarded, the
// first error is returned.
func ForEach[R any](s *Scheduler, n int, gen func(task int) core.Functor[R]) error {
	_, err := Map(s, n, gen)
	return err
}
