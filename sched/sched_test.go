package sched_test

import (
	"sync"
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/internal/core"
	"hamoffload/sched"
)

// Unit tests of the placement policies (pure functions, no backend) and the
// scheduler's validation. The end-to-end behaviour — Map over a cluster,
// batching composition, determinism — lives in machine/sched_test.go.

func TestRoundRobinCycles(t *testing.T) {
	pol := sched.RoundRobin()
	nodes := []core.NodeID{1, 2, 3}
	idle := []int{0, 0, 0}
	for task := 0; task < 9; task++ {
		if got, want := pol.Pick(task, nodes, idle), task%3; got != want {
			t.Fatalf("task %d -> %d, want %d", task, got, want)
		}
	}
}

func TestLeastInFlightPicksMinAndBreaksTiesLow(t *testing.T) {
	pol := sched.LeastInFlight()
	nodes := []core.NodeID{1, 2, 3, 4}
	for _, tc := range []struct {
		inflight []int
		want     int
	}{
		{[]int{0, 0, 0, 0}, 0}, // all idle: lowest index
		{[]int{2, 1, 3, 1}, 1}, // tie between 1 and 3: lowest index
		{[]int{5, 4, 3, 9}, 2},
		{[]int{1, 0, 0, 0}, 1},
	} {
		if got := pol.Pick(0, nodes, tc.inflight); got != tc.want {
			t.Errorf("inflight %v -> %d, want %d", tc.inflight, got, tc.want)
		}
	}
}

func TestAffinityMapsAndFallsBack(t *testing.T) {
	nodes := []core.NodeID{3, 5, 7}
	pol := sched.Affinity(func(task int) core.NodeID {
		if task < 3 {
			return nodes[task]
		}
		return 42 // not a scheduler node: falls back to round-robin by index
	})
	for task := 0; task < 3; task++ {
		if got := pol.Pick(task, nodes, []int{0, 0, 0}); got != task {
			t.Errorf("task %d -> %d, want %d", task, got, task)
		}
	}
	for task := 3; task < 9; task++ {
		if got, want := pol.Pick(task, nodes, []int{0, 0, 0}), task%3; got != want {
			t.Errorf("fallback task %d -> %d, want %d", task, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "sched-target")
	host := core.NewRuntime(hb, "sched-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	defer func() {
		if err := host.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
		wg.Wait()
	}()

	if _, err := sched.New(host, nil, sched.RoundRobin()); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := sched.New(host, []core.NodeID{1}, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := sched.New(host, []core.NodeID{0}, sched.RoundRobin()); err == nil {
		t.Error("self node accepted")
	}
	if _, err := sched.New(host, []core.NodeID{99}, sched.RoundRobin()); err == nil {
		t.Error("out-of-range node accepted")
	}
	s, err := sched.New(host, sched.Targets(host), sched.RoundRobin())
	if err != nil {
		t.Fatalf("valid scheduler rejected: %v", err)
	}
	if n := s.Nodes(); len(n) != 1 || n[0] != 1 {
		t.Errorf("Targets = %v, want [1]", n)
	}
}
