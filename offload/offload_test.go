package offload_test

import (
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/offload"
)

// TestPublicSurface exercises the re-exported API end to end through the
// package's own names — aliases, generic wrappers and constants — so a
// regression in the public surface fails here even if the internals pass.
func TestPublicSurface(t *testing.T) {
	if offload.HostNode != offload.NodeID(0) {
		t.Error("HostNode should be node 0")
	}
	rt, shutdown := startApp() // from example_test.go
	defer shutdown()

	if rt.ThisNode() != offload.HostNode || rt.NumNodes() != 2 {
		t.Errorf("introspection = %d/%d", rt.ThisNode(), rt.NumNodes())
	}
	var d offload.NodeDescriptor = rt.GetNodeDescriptor(1)
	if d.Name == "" {
		t.Error("empty descriptor")
	}

	buf, err := offload.Allocate[int32](rt, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f := offload.PutAsync(rt, []int32{1, 2, 3}, buf); !f.Test() {
		t.Error("PutAsync future should be ready")
	}
	out := make([]int32, 3)
	if _, err := offload.GetAsync(rt, buf, out).Get(); err != nil {
		t.Fatal(err)
	}
	if out[1] != 2 {
		t.Errorf("GetAsync data = %v", out)
	}
	off, err := buf.Offset(2)
	if err != nil || off.Count != 6 {
		t.Errorf("Offset = %+v, %v", off, err)
	}
	if buf.IsNil() || (offload.BufferPtr[int32]{}).IsNil() != true {
		t.Error("IsNil broken")
	}
	if err := offload.Free(rt, buf); err != nil {
		t.Fatal(err)
	}

	// Copy between two targets needs a 3-node app.
	nodes, err := locb.NewN(3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*offload.Runtime, 3)
	for i, n := range nodes {
		rts[i] = offload.NewRuntime(n, "surface-arch")
	}
	done := make(chan struct{}, 2)
	for i := 1; i < 3; i++ {
		go func(r *offload.Runtime) {
			_ = r.Serve()
			done <- struct{}{}
		}(rts[i])
	}
	a, err := offload.Allocate[float64](rts[0], 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := offload.Allocate[float64](rts[0], 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := offload.Put(rts[0], []float64{9, 8, 7, 6}, a); err != nil {
		t.Fatal(err)
	}
	if err := offload.Copy(rts[0], a, b, 4); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 4)
	if err := offload.Get(rts[0], b, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[3] != 6 {
		t.Errorf("Copy data = %v", got)
	}
	if err := rts[0].Finalize(); err != nil {
		t.Fatal(err)
	}
	<-done
	<-done
}
