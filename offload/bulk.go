package offload

import (
	"hamoffload/internal/core"
	"hamoffload/sched"
)

// Bulk offload APIs: message batching (core/batch.go) and cluster-wide
// scheduling (package sched), re-exported on the public facade.

type (
	// BatchPolicy drives when queued offloads flush as one batch frame;
	// the zero value disables batching. See core.BatchPolicy.
	BatchPolicy = core.BatchPolicy
	// Batcher queues offloads per target node and ships them as batch
	// frames. See core.Batcher.
	Batcher = core.Batcher
	// Scheduler shards offloads across a node set under a Policy.
	Scheduler = sched.Scheduler
	// Policy decides task placement; see sched.RoundRobin,
	// sched.LeastInFlight and sched.Affinity.
	Policy = sched.Policy
)

// NewBatcher creates a batcher over rt's backend and batching policy.
func NewBatcher(rt *Runtime) *Batcher { return core.NewBatcher(rt) }

// BatchAdd queues fn for node on b and returns its future; the frame ships
// according to rt's BatchPolicy, on Flush/FlushAll, or when a queued
// future blocks in Get.
func BatchAdd[R any](b *Batcher, node NodeID, fn Functor[R]) *Future[R] {
	return core.BatchAdd(b, node, fn)
}

// AsyncBatch offloads fns to node as batch frames under rt's policy,
// returning the futures in submission order — one flag publish and one
// transfer per frame instead of per message.
func AsyncBatch[R any](rt *Runtime, node NodeID, fns []Functor[R]) []*Future[R] {
	return core.AsyncBatch(rt, node, fns)
}

// NewScheduler builds a scheduler over nodes of rt's application.
func NewScheduler(rt *Runtime, nodes []NodeID, pol Policy) (*Scheduler, error) {
	return sched.New(rt, nodes, pol)
}

// SchedTargets returns every node of rt's application except the caller —
// the natural node set for a scheduler over all VEs.
func SchedTargets(rt *Runtime) []NodeID { return sched.Targets(rt) }

// MapFutures shards n functor invocations across s's nodes and returns
// the futures in task order without waiting.
func MapFutures[R any](s *Scheduler, n int, gen func(task int) Functor[R]) []*Future[R] {
	return sched.MapFutures(s, n, gen)
}

// Map shards n functor invocations across s's nodes and gathers the
// results in task order.
func Map[R any](s *Scheduler, n int, gen func(task int) Functor[R]) ([]R, error) {
	return sched.Map(s, n, gen)
}

// ForEach is Map with the results discarded.
func ForEach[R any](s *Scheduler, n int, gen func(task int) Functor[R]) error {
	return sched.ForEach(s, n, gen)
}
