package offload_test

import (
	"fmt"
	"log"

	"hamoffload/internal/backend/locb"
	"hamoffload/offload"
)

// Offloadable functions are registered at package level — the analog of the
// C++ template instantiation that puts identical handler tables into the
// host and target binaries.
var (
	exDot = offload.NewFunc3[float64]("example.dot",
		func(c *offload.Ctx, a, b offload.BufferPtr[float64], n int64) (float64, error) {
			av, err := offload.ReadLocal(c, a, 0, n)
			if err != nil {
				return 0, err
			}
			bv, err := offload.ReadLocal(c, b, 0, n)
			if err != nil {
				return 0, err
			}
			r := 0.0
			for i := range av {
				r += av[i] * bv[i]
			}
			return r, nil
		})

	exGreet = offload.NewFunc1[string]("example.greet",
		func(c *offload.Ctx, name string) (string, error) {
			return "hello, " + name, nil
		})

	// exStats shows a custom composite argument implementing Marshaler.
	exStats = offload.NewFunc1[float64]("example.stats",
		func(c *offload.Ctx, w window) (float64, error) {
			return (w.Hi - w.Lo) * w.Scale, nil
		})
)

// window is a user-defined argument type with its own wire format:
// implement Marshaler with pointer receivers, offload by value.
type window struct {
	Lo, Hi, Scale float64
}

func (w *window) EncodeHAM(e *offload.Encoder) {
	e.PutF64(w.Lo)
	e.PutF64(w.Hi)
	e.PutF64(w.Scale)
}

func (w *window) DecodeHAM(d *offload.Decoder) {
	w.Lo = d.F64()
	w.Hi = d.F64()
	w.Scale = d.F64()
}

// ExampleMarshaler offloads a function taking a user-defined composite
// argument — the Go analog of HAM's per-type serialisation hooks.
func ExampleMarshaler() {
	rt, shutdown := startApp()
	defer shutdown()

	v, err := offload.Sync(rt, 1, exStats.Bind(window{Lo: 2, Hi: 10, Scale: 0.5}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: 4
}

// startApp wires a two-node loopback application and returns the host
// runtime plus a shutdown function. Real programs use machine.ConnectDMA
// (simulated SX-Aurora) or the TCP backend instead of the loopback.
func startApp() (*offload.Runtime, func()) {
	hostB, targetB, err := locb.NewPair(1 << 22)
	if err != nil {
		log.Fatal(err)
	}
	target := offload.NewRuntime(targetB, "example-target")
	host := offload.NewRuntime(hostB, "example-host")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := target.Serve(); err != nil {
			log.Fatal(err)
		}
	}()
	return host, func() {
		if err := host.Finalize(); err != nil {
			log.Fatal(err)
		}
		<-done
	}
}

// Example_innerProduct ports the paper's Fig. 2 program: allocate target
// memory, transfer inputs, offload asynchronously, synchronise on a future.
func Example_innerProduct() {
	rt, shutdown := startApp()
	defer shutdown()

	const n = 4
	target := offload.NodeID(1)
	aT, _ := offload.Allocate[float64](rt, target, n)
	bT, _ := offload.Allocate[float64](rt, target, n)
	_ = offload.Put(rt, []float64{1, 2, 3, 4}, aT)
	_ = offload.Put(rt, []float64{10, 20, 30, 40}, bT)

	future := offload.Async(rt, target, exDot.Bind(aT, bT, n))
	// ... the host could work here while the target computes ...
	result, err := future.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result)
	// Output: 300
}

// ExampleSync performs a blocking offload of a string-processing function.
func ExampleSync() {
	rt, shutdown := startApp()
	defer shutdown()

	greeting, err := offload.Sync(rt, 1, exGreet.Bind("aurora"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(greeting)
	// Output: hello, aurora
}

// ExampleGet transfers data back from target memory.
func ExampleGet() {
	rt, shutdown := startApp()
	defer shutdown()

	buf, _ := offload.Allocate[int32](rt, 1, 3)
	_ = offload.Put(rt, []int32{7, 8, 9}, buf)
	out := make([]int32, 3)
	_ = offload.Get(rt, buf, out)
	fmt.Println(out)
	// Output: [7 8 9]
}
