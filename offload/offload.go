// Package offload is the public HAM-Offload API: a portable, low-overhead
// offloading programming model based on Heterogeneous Active Messages,
// ported to Go from the C++ framework the paper extends to the NEC SX-Aurora
// TSUBASA. The API mirrors the paper's Table II:
//
//	node_t              -> NodeID
//	node_descriptor     -> NodeDescriptor
//	buffer_ptr<T>       -> BufferPtr[T]
//	future<T>           -> Future[T]
//	f2f(fn, args...)    -> NewFuncN(name, impl) + Bind(args...)
//	sync(node, f)       -> Sync(rt, node, functor)
//	async(node, f)      -> Async(rt, node, functor)
//	allocate<T>(n, s)   -> Allocate[T](rt, node, count)
//	free(p)             -> Free(rt, ptr)
//	put/get/copy        -> Put / Get / Copy
//	num_nodes()         -> rt.NumNodes()
//	this_node()         -> rt.ThisNode()
//	get_node_descriptor -> rt.GetNodeDescriptor(n)
//
// Offloadable functions are registered once (typically in package init
// functions, the analog of the C++ template instantiation at build time) and
// bound to arguments at the call site:
//
//	var innerProd = offload.NewFunc3[float64]("inner_prod",
//	    func(c *offload.Ctx, a, b offload.BufferPtr[float64], n int64) (float64, error) {
//	        av, _ := offload.ReadLocal(c, a, 0, n)
//	        bv, _ := offload.ReadLocal(c, b, 0, n)
//	        c.ChargeVector(2*n, 16*n, 8)
//	        r := 0.0
//	        for i := range av { r += av[i] * bv[i] }
//	        return r, nil
//	    })
//
//	fut := offload.Async(rt, target, innerProd.Bind(aT, bT, n))
//	result, err := fut.Get()
//
// The communication backend is exchangeable (Fig. 1): the machine package
// wires the two SX-Aurora protocols of the paper onto a simulated A300-8;
// the TCP backend connects host processes over real sockets.
package offload

import (
	"hamoffload/internal/core"
	"hamoffload/internal/ham"
)

// Core type surface, re-exported.
type (
	// NodeID addresses one process of the application; node 0 is the host.
	NodeID = core.NodeID
	// NodeDescriptor describes a node (Table II's node_descriptor).
	NodeDescriptor = core.NodeDescriptor
	// Runtime is one node's HAM-Offload runtime.
	Runtime = core.Runtime
	// Backend is the abstract communication layer of Fig. 1.
	Backend = core.Backend
	// LocalMemory is a node's local memory used by allocate/free handlers.
	LocalMemory = core.LocalMemory
	// Ctx is the execution context of an offloaded function on its target.
	Ctx = core.Ctx
	// Unit is the result type of offloaded functions returning nothing.
	Unit = core.Unit
	// Marshaler lets custom argument types define their wire format:
	// implement EncodeHAM/DecodeHAM with pointer receivers and use the
	// value type as the offloaded argument.
	Marshaler = core.Marshaler
	// Encoder and Decoder are the HAM wire codec used by Marshaler
	// implementations.
	Encoder = ham.Encoder
	Decoder = ham.Decoder
	// Handle identifies an in-flight offload at backend level.
	Handle = core.Handle
)

// HostNode is the conventional host rank.
const HostNode = core.HostNode

// FaultTolerance is the runtime's retry policy for transient offload
// failures; install it with rt.SetFaultTolerance (or through
// machine.ProtocolOptions.Retry). The zero value disables retries.
type FaultTolerance = core.FaultTolerance

// HedgePolicy arms hedged requests against fail-slow (gray) targets: an
// offload still in flight after the configured simulated delay is
// speculatively re-issued to a second healthy node and the first settled
// copy wins. Install it with rt.SetHedging (or through
// machine.ProtocolOptions.Hedge); requires FaultTolerance. The zero value
// disables hedging.
type HedgePolicy = core.HedgePolicy

// RetryBudget is the per-target token bucket shared by retries and hedges,
// capping the extra traffic resilience machinery may aim at a degraded
// node. Install it with rt.SetRetryBudget (or through
// machine.ProtocolOptions.RetryBudget). The zero value is unbudgeted.
type RetryBudget = core.RetryBudget

// Failure classification for offload errors, re-exported from core. Match
// with errors.Is; see docs/FAULTS.md.
var (
	// ErrNodeFailed marks a node as failed: in-flight futures to it fail,
	// and new offloads are rejected until Runtime.RecoverNode succeeds.
	ErrNodeFailed = core.ErrNodeFailed
	// ErrOffloadTimeout reports an offload that exceeded the backend's
	// configured timeout on the simulated clock.
	ErrOffloadTimeout = core.ErrOffloadTimeout
	// ErrPayloadCorrupt reports a checksum or envelope violation on a
	// fault-tolerant message; it is transient and retried.
	ErrPayloadCorrupt = core.ErrPayloadCorrupt
)

// IsTransient reports whether err is worth retrying (corrupt payloads and
// backend errors that declare Transient() true; node failures and timeouts
// are permanent).
func IsTransient(err error) bool { return core.IsTransient(err) }

// Generic type surface, re-exported (generic aliases).
type (
	// BufferPtr points to target memory of element type T (buffer_ptr<T>).
	BufferPtr[T Elem] = core.BufferPtr[T]
	// Future is the lazy synchronisation object of async offloads.
	Future[T any] = core.Future[T]
	// Functor is a function with bound arguments, ready to offload.
	Functor[R any] = core.Functor[R]
	// Elem constrains buffer elements to fixed-size scalars.
	Elem = core.Elem
	// Func0..Func4 are registered offloadable functions by arity.
	Func0[R any]                 = core.Func0[R]
	Func1[R, A1 any]             = core.Func1[R, A1]
	Func2[R, A1, A2 any]         = core.Func2[R, A1, A2]
	Func3[R, A1, A2, A3 any]     = core.Func3[R, A1, A2, A3]
	Func4[R, A1, A2, A3, A4 any] = core.Func4[R, A1, A2, A3, A4]
)

// NewRuntime creates the runtime for one node over a backend. arch labels
// this node's binary for HAM's handler-key translation; the two sides of an
// application must use different arch strings.
func NewRuntime(b Backend, arch string) *Runtime { return core.NewRuntime(b, arch) }

// NewFunc0 registers an offloadable function with no arguments. Register
// before creating any Runtime, typically from init functions.
func NewFunc0[R any](name string, impl func(*Ctx) (R, error)) Func0[R] {
	return core.NewFunc0(name, impl)
}

// NewFunc1 registers an offloadable one-argument function.
func NewFunc1[R, A1 any](name string, impl func(*Ctx, A1) (R, error)) Func1[R, A1] {
	return core.NewFunc1(name, impl)
}

// NewFunc2 registers an offloadable two-argument function.
func NewFunc2[R, A1, A2 any](name string, impl func(*Ctx, A1, A2) (R, error)) Func2[R, A1, A2] {
	return core.NewFunc2(name, impl)
}

// NewFunc3 registers an offloadable three-argument function.
func NewFunc3[R, A1, A2, A3 any](name string, impl func(*Ctx, A1, A2, A3) (R, error)) Func3[R, A1, A2, A3] {
	return core.NewFunc3(name, impl)
}

// NewFunc4 registers an offloadable four-argument function.
func NewFunc4[R, A1, A2, A3, A4 any](name string, impl func(*Ctx, A1, A2, A3, A4) (R, error)) Func4[R, A1, A2, A3, A4] {
	return core.NewFunc4(name, impl)
}

// Async performs an asynchronous offload of fn to node (Table II's async).
func Async[R any](rt *Runtime, node NodeID, fn Functor[R]) *Future[R] {
	return core.Async(rt, node, fn)
}

// Sync performs a synchronous offload of fn to node (Table II's sync).
func Sync[R any](rt *Runtime, node NodeID, fn Functor[R]) (R, error) {
	return core.Sync(rt, node, fn)
}

// Allocate reserves count elements of type T on an offload target.
func Allocate[T Elem](rt *Runtime, node NodeID, count int64) (BufferPtr[T], error) {
	return core.Allocate[T](rt, node, count)
}

// Free releases target memory allocated with Allocate.
func Free[T Elem](rt *Runtime, b BufferPtr[T]) error { return core.Free(rt, b) }

// Put writes src into target memory at dst.
func Put[T Elem](rt *Runtime, src []T, dst BufferPtr[T]) error { return core.Put(rt, src, dst) }

// Get reads len(dst) elements from target memory at src.
func Get[T Elem](rt *Runtime, src BufferPtr[T], dst []T) error { return core.Get(rt, src, dst) }

// PutAsync is the asynchronous put of Table II; current backends complete
// eagerly, so the returned future is immediately ready.
func PutAsync[T Elem](rt *Runtime, src []T, dst BufferPtr[T]) *Future[Unit] {
	return core.PutAsync(rt, src, dst)
}

// GetAsync is the asynchronous get of Table II; see PutAsync.
func GetAsync[T Elem](rt *Runtime, src BufferPtr[T], dst []T) *Future[Unit] {
	return core.GetAsync(rt, src, dst)
}

// Copy performs a host-orchestrated copy between two target buffers.
func Copy[T Elem](rt *Runtime, src, dst BufferPtr[T], count int64) error {
	return core.Copy(rt, src, dst, count)
}

// ReadLocal loads elements from a local buffer inside an offloaded function.
func ReadLocal[T Elem](c *Ctx, b BufferPtr[T], off, count int64) ([]T, error) {
	return core.ReadLocal(c, b, off, count)
}

// WriteLocal stores elements into a local buffer inside an offloaded function.
func WriteLocal[T Elem](c *Ctx, b BufferPtr[T], off int64, vals []T) error {
	return core.WriteLocal(c, b, off, vals)
}

// AsyncAll offloads one functor to each listed node, returning futures in
// node order.
func AsyncAll[R any](rt *Runtime, nodes []NodeID, fn Functor[R]) []*Future[R] {
	return core.AsyncAll(rt, nodes, fn)
}

// GetAll drains the futures, returning results in order and the first error.
func GetAll[R any](futs []*Future[R]) ([]R, error) { return core.GetAll(futs) }
